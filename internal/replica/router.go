package replica

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qbs/internal/obs"
	"qbs/internal/server"
)

// RouterOptions tunes the read-fanning query router.
type RouterOptions struct {
	// HealthInterval is the backend probe cadence (0 = 500ms).
	HealthInterval time.Duration
	// MaxLagEpochs evicts a replica whose applied epoch trails the
	// primary by more than this until it catches back up (0 = 4096).
	MaxLagEpochs uint64
	// Client issues the proxied requests (nil = a 30s-timeout client).
	Client *http.Client
	// Seed makes backend picks deterministic for tests (0 = time-based).
	Seed int64
	// Journal receives the router's structured events — backend
	// evictions, readmissions, primary failovers (nil = obs.DefaultJournal).
	Journal *obs.Journal
	// FleetInterval is the fleet-view scrape cadence: how often the
	// router pulls each backend's /metrics and /debug/slo for
	// /debug/fleet (0 = 2s, negative disables the background sweeps;
	// /debug/fleet then scrapes on demand).
	FleetInterval time.Duration
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.HealthInterval <= 0 {
		o.HealthInterval = 500 * time.Millisecond
	}
	if o.MaxLagEpochs == 0 {
		o.MaxLagEpochs = 4096
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	if o.Journal == nil {
		o.Journal = obs.DefaultJournal
	}
	if o.FleetInterval == 0 {
		o.FleetInterval = 2 * time.Second
	}
	return o
}

// backend is one routed-to server with its balancing state.
type backend struct {
	url      string
	role     string // "primary" or "replica"
	inflight atomic.Int64
	healthy  atomic.Bool
	epoch    atomic.Uint64
	picks    *obs.Counter // forward attempts routed to this backend
}

// Router fans reads (GET and HEAD) across healthy replicas —
// power-of-two-choices on in-flight count — and forwards every other
// request to the primary.
// A read that fails on its chosen replica (transport error or 503, the
// min_epoch "still behind" answer) retries on the alternate choice and
// finally on the primary, which is always current. A background probe
// loop evicts replicas that fail health checks or fall more than
// MaxLagEpochs behind, and readmits them when they recover.
type Router struct {
	primary        *backend
	replicas       []*backend
	opts           RouterOptions
	probeClient    *http.Client    // short-timeout client for health probes
	probeTransport *http.Transport // private, torn down in Stop

	rngMu sync.Mutex
	rng   *rand.Rand

	// Routing-decision series on the router's own registry: per-backend
	// pick counters and healthy/epoch/inflight gauges, plus totals for
	// read retries and primary failovers and the proxied-request latency
	// histogram (with exemplars linking to retained traces).
	reg       *obs.Registry
	retries   *obs.Counter
	failovers *obs.Counter
	latency   *obs.Histogram
	tracer    *obs.Tracer

	// Health & diagnostics control plane: routing-state transitions go
	// to the journal, routed reads feed an availability SLO, the flight
	// recorder auto-captures on fast burn or error spikes, and the fleet
	// scraper aggregates every backend's view under /debug/fleet.
	journal      *obs.Journal
	evEvicted    *obs.EventDef
	evReadmitted *obs.EventDef
	evFailover   *obs.EventDef
	slos         *obs.SLOSet
	sloRead      *obs.SLO
	flight       *obs.FlightRecorder
	ownFlight    bool // Stop() only stops a recorder the router created
	fleet        *fleetState

	stop chan struct{}
	wg   sync.WaitGroup
}

// Journal returns the journal the router's events land in.
func (rt *Router) Journal() *obs.Journal { return rt.journal }

// SLOs returns the router's SLO set (the routed-read availability SLO).
func (rt *Router) SLOs() *obs.SLOSet { return rt.slos }

// FlightRecorder returns the router's profile flight recorder.
func (rt *Router) FlightRecorder() *obs.FlightRecorder { return rt.flight }

// SetFlightRecorder replaces the router's flight recorder (e.g. with
// the process-wide obs.DefaultFlightRecorder) and registers the
// router's auto-capture triggers on it. The caller owns its lifecycle.
func (rt *Router) SetFlightRecorder(f *obs.FlightRecorder) {
	if f == nil {
		return
	}
	rt.flight = f
	rt.ownFlight = false
	rt.registerFlightTriggers(f)
}

// errorSpikeEvents is the error-level journal volume (over the last
// 10s) that trips the flight recorder's error_event_spike trigger.
const errorSpikeEvents = 5

func (rt *Router) registerFlightTriggers(f *obs.FlightRecorder) {
	f.AddTrigger("slo_fast_burn", func() bool { return rt.slos.FastBurn() })
	f.AddTrigger("error_event_spike", func() bool {
		return rt.journal.ErrorsInLast(10*time.Second) >= errorSpikeEvents
	})
}

// setHealthy flips b's routing bit and journals the transition; the
// trace ID (set on request-path evictions) ties the eviction to the
// request whose failure triggered it.
func (rt *Router) setHealthy(b *backend, healthy bool, reason, traceID string) {
	if b.healthy.Swap(healthy) == healthy {
		return
	}
	if healthy {
		rt.evReadmitted.Emit(obs.Str("backend", b.url), obs.Str("role", b.role))
	} else {
		rt.evEvicted.EmitTrace(traceID,
			obs.Str("backend", b.url), obs.Str("role", b.role), obs.Str("reason", reason))
	}
}

// Tracer returns the router's span tracer.
func (rt *Router) Tracer() *obs.Tracer { return rt.tracer }

// SetTracer replaces the span tracer (obs.DefaultTracer by default) so
// tests and multi-router processes keep span stores isolated.
func (rt *Router) SetTracer(t *obs.Tracer) {
	if t != nil {
		rt.tracer = t
	}
}

// Registry returns the router's metrics registry.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// registerBackend attaches b's pick counter and state gauges to the
// router registry under a backend="<url>" label (role disambiguates the
// primary from a replica at the same URL in tests).
func (rt *Router) registerBackend(b *backend, role string) {
	b.role = role
	lbl := `backend="` + obs.EscapeLabel(b.url) + `",role="` + role + `"`
	b.picks = rt.reg.Counter("qbs_router_picks_total", lbl)
	rt.reg.GaugeFunc("qbs_router_backend_healthy", lbl, func() float64 {
		if b.healthy.Load() {
			return 1
		}
		return 0
	})
	rt.reg.GaugeFunc("qbs_router_backend_epoch", lbl, func() float64 {
		return float64(b.epoch.Load())
	})
	rt.reg.GaugeFunc("qbs_router_backend_inflight", lbl, func() float64 {
		return float64(b.inflight.Load())
	})
	rt.registerFleetSeries(b)
}

// NewRouter builds a router over one primary and any number of replica
// base URLs and starts its health probes (one synchronous sweep runs
// before returning, so routing state is populated from the start).
func NewRouter(primaryURL string, replicaURLs []string, opts RouterOptions) *Router {
	opts = opts.withDefaults()
	probeTransport := &http.Transport{}
	rt := &Router{
		primary:        &backend{url: strings.TrimRight(primaryURL, "/")},
		opts:           opts,
		probeTransport: probeTransport,
		probeClient:    &http.Client{Timeout: 2 * time.Second, Transport: probeTransport},
		rng:            rand.New(rand.NewSource(opts.Seed)),
		reg:            obs.NewRegistry(),
		stop:           make(chan struct{}),
	}
	rt.retries = rt.reg.Counter("qbs_router_retries_total", "")
	rt.failovers = rt.reg.Counter("qbs_router_failovers_total", "")
	rt.latency = rt.reg.Histogram("qbs_router_request_ns", "")
	rt.tracer = obs.DefaultTracer
	rt.journal = opts.Journal
	rt.evEvicted = rt.journal.Def("router", "backend_evicted", obs.LevelWarn)
	rt.evReadmitted = rt.journal.Def("router", "backend_readmitted", obs.LevelInfo)
	rt.evFailover = rt.journal.Def("router", "primary_failover", obs.LevelError)
	rt.slos = obs.NewSLOSet(rt.reg)
	rt.sloRead = rt.slos.Add(obs.NewSLO("routed-read-availability", "read", 0.999, 500*time.Millisecond))
	rt.flight = obs.NewFlightRecorder(16)
	rt.ownFlight = true
	rt.registerFlightTriggers(rt.flight)
	rt.fleet = newFleetState()
	rt.primary.healthy.Store(true)
	rt.registerBackend(rt.primary, "primary")
	for _, u := range replicaURLs {
		b := &backend{url: strings.TrimRight(u, "/")}
		rt.registerBackend(b, "replica")
		rt.replicas = append(rt.replicas, b)
	}
	rt.sweep()
	rt.wg.Add(1)
	go rt.healthLoop()
	if opts.FleetInterval > 0 {
		rt.wg.Add(1)
		go rt.fleetLoop()
	}
	return rt
}

// Stop ends the health probes and tears down their idle connections.
// In-flight proxied requests finish.
func (rt *Router) Stop() {
	select {
	case <-rt.stop:
	default:
		close(rt.stop)
	}
	rt.wg.Wait()
	if rt.ownFlight {
		rt.flight.Stop()
	}
	rt.probeTransport.CloseIdleConnections()
}

func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.opts.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			rt.sweep()
		}
	}
}

// sweep probes every backend's /epoch concurrently: the primary's
// answer is the lag reference; a replica is healthy when it answers and
// trails by at most MaxLagEpochs. Probes use a short dedicated timeout
// so one black-holed backend cannot stall decisions about the others
// (or, on the synchronous first sweep, router startup).
func (rt *Router) sweep() {
	var wg sync.WaitGroup
	probeOne := func(b *backend, lagGated bool, tip uint64) {
		defer wg.Done()
		e, ok := rt.probe(b)
		if !ok {
			rt.setHealthy(b, false, "probe_failed", "")
			return
		}
		b.epoch.Store(e)
		if !lagGated || tip <= e || tip-e <= rt.opts.MaxLagEpochs {
			rt.setHealthy(b, true, "", "")
		} else {
			rt.setHealthy(b, false, "lagging", "")
		}
	}
	wg.Add(1)
	probeOne(rt.primary, false, 0)
	tip := rt.primary.epoch.Load()
	for _, b := range rt.replicas {
		wg.Add(1)
		go probeOne(b, true, tip)
	}
	wg.Wait()
}

// probe fetches a backend's current epoch.
func (rt *Router) probe(b *backend) (uint64, bool) {
	resp, err := rt.probeClient.Get(b.url + "/epoch")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return 0, false
	}
	var body struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		return 0, false
	}
	return body.Epoch, true
}

// ServeHTTP implements http.Handler: writes to the primary, reads
// across the replicas. /healthz and /metrics are answered by the router
// itself — a load balancer health-checking the router must observe the
// router's ability to route, not one random backend's health, and the
// routing table is state only the router has.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// HEAD routes like GET: it is a read (load balancers commonly
	// health-check with HEAD), and treating it as a write would proxy
	// HEAD /healthz to the primary — reporting one backend's health as
	// the router's. net/http discards response bodies for HEAD, so the
	// local handlers need no special casing.
	isRead := r.Method == http.MethodGet || r.Method == http.MethodHead
	if isRead {
		if r.Method == http.MethodHead {
			// LB probes: HEAD answers 200 with no body, mirroring the
			// backend muxes, without rendering either local payload.
			switch r.URL.Path {
			case "/healthz", "/metrics":
				w.WriteHeader(http.StatusOK)
				return
			}
		}
		switch {
		case r.URL.Path == "/healthz":
			rt.serveHealthz(w)
			return
		case r.URL.Path == "/metrics":
			rt.serveMetrics(w, r)
			return
		case r.URL.Path == "/debug/traces":
			rt.serveTraces(w, r)
			return
		case strings.HasPrefix(r.URL.Path, "/debug/traces/"):
			rt.serveTraceByID(w, r, strings.TrimPrefix(r.URL.Path, "/debug/traces/"))
			return
		case r.URL.Path == "/debug/logs":
			rt.journal.ServeHTTP(w, r)
			return
		case r.URL.Path == "/debug/slo":
			rt.slos.ServeHTTP(w, r)
			return
		case r.URL.Path == "/debug/profiles" || strings.HasPrefix(r.URL.Path, "/debug/profiles/"):
			rt.flight.ServeHTTP(w, r)
			return
		case r.URL.Path == "/debug/fleet":
			rt.serveFleet(w, r)
			return
		}
	}
	// Every proxied request carries a trace ID — the client's if it sent
	// one (via either trace header), minted here otherwise — held
	// constant across retries and the primary failover so one query is
	// one ID at every hop. The backend echoes it; for router-written
	// errors it is set explicitly below.
	traceID := r.Header.Get(obs.TraceHeader)
	var remoteParent uint64
	forced := false
	if id, parent, sampled, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
		traceID, remoteParent, forced = id, parent, sampled
	}
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	r.Header.Set(obs.TraceHeader, traceID)
	// The router's root span is the top of the cross-process tree; each
	// forward attempt hangs a child under it, and the traceparent sent
	// downstream names that attempt span as the backend root's parent.
	tb := rt.tracer.Begin("router", traceID, remoteParent, forced)
	root := tb.Root()
	root.SetStr("method", r.Method)
	root.SetStr("path", r.URL.Path)
	// Routed reads feed the availability SLO with the status the client
	// actually saw (200 until a handler says otherwise).
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	w = sw
	start := time.Now()
	defer func() {
		dur := time.Since(start)
		rt.latency.Observe(dur)
		if isRead {
			rt.sloRead.Record(int64(dur), sw.status)
		}
		if id, kept := rt.tracer.Finish(tb); kept {
			rt.latency.SetExemplar(int64(dur), id)
		}
	}()
	if !isRead {
		// Writes are forwarded exactly once: a retry could double-apply.
		if rt.forward(rt.primary, w, r, false, tb, 0) == fwdDone {
			return
		}
		tb.MarkError()
		w.Header().Set(obs.TraceHeader, traceID)
		httpError(w, http.StatusBadGateway, "primary unreachable")
		return
	}
	sawUnavailable := false
	for attempt, b := range rt.pick() {
		if attempt > 0 {
			rt.retries.Inc()
			// The retry exemplar links the counter a dashboard alerts on
			// to a retained trace showing which attempt failed and where.
			rt.retries.SetExemplar(traceID)
			if b == rt.primary {
				rt.failovers.Inc()
				// Request-scoped: the event shares the request's trace ID
				// with whatever error the failed replica journalled.
				rt.evFailover.EmitTrace(traceID,
					obs.Str("path", r.URL.Path), obs.Int("attempt", int64(attempt)))
			}
		}
		switch rt.forward(b, w, r, true, tb, attempt) {
		case fwdDone:
			return
		case fwdUnavailable:
			sawUnavailable = true
		}
	}
	tb.MarkError()
	w.Header().Set(obs.TraceHeader, traceID)
	if sawUnavailable {
		// Every backend said 503 (min_epoch not yet published anywhere,
		// or mid-restart): preserve the documented retriable signal
		// instead of flattening it into a terminal 502.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "no backend can answer yet; retry")
		return
	}
	httpError(w, http.StatusBadGateway, "no backend could answer")
}

// statusWriter captures the status code written downstream so the
// router's SLO records what the client saw.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// forward outcomes.
const (
	fwdDone        = iota // response written to the client
	fwdFailed             // transport-level failure, nothing written
	fwdUnavailable        // backend answered 503 (drained, nothing written)
)

// pick orders the read candidates: two healthy replicas chosen at
// random, the less loaded first (power of two choices), with the
// primary as the final fallback.
func (rt *Router) pick() []*backend {
	var healthy []*backend
	for _, b := range rt.replicas {
		if b.healthy.Load() {
			healthy = append(healthy, b)
		}
	}
	switch len(healthy) {
	case 0:
		return []*backend{rt.primary}
	case 1:
		return []*backend{healthy[0], rt.primary}
	}
	rt.rngMu.Lock()
	i := rt.rng.Intn(len(healthy))
	j := rt.rng.Intn(len(healthy) - 1)
	rt.rngMu.Unlock()
	if j >= i {
		j++
	}
	a, b := healthy[i], healthy[j]
	if b.inflight.Load() < a.inflight.Load() {
		a, b = b, a
	}
	return []*backend{a, b, rt.primary}
}

// forward proxies one request to b. retryable (reads) treats transport
// errors and 503 as "try the next backend" (fwdFailed/fwdUnavailable,
// nothing written); writes pass every completed response through. Each
// call records a per-attempt child span carrying the backend URL and
// attempt ordinal — the record of *which* backend a failover left —
// and propagates traceparent naming that span as the downstream parent.
func (rt *Router) forward(b *backend, w http.ResponseWriter, r *http.Request, retryable bool, tb *obs.TraceBuf, attempt int) int {
	b.inflight.Add(1)
	b.picks.Inc()
	defer b.inflight.Add(-1)

	sp := tb.StartSpan("router.attempt")
	sp.SetStr("backend", b.url)
	sp.SetInt("attempt", int64(attempt))
	defer sp.End()

	req, err := http.NewRequestWithContext(r.Context(), r.Method, b.url+r.URL.RequestURI(), r.Body)
	if err != nil {
		sp.Fail()
		return fwdFailed
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	tid := r.Header.Get(obs.TraceHeader)
	if tid != "" {
		req.Header.Set(obs.TraceHeader, tid)
		var parent uint64
		if sp != nil {
			parent = sp.ID
		}
		req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(tid, parent, tb.Sampled()))
	}
	resp, err := rt.opts.Client.Do(req)
	if err != nil {
		sp.Fail()
		// Only a failure of the backend counts against it: a client that
		// hung up cancels r.Context(), and evicting a healthy replica
		// for that would let impatient clients drain the read pool.
		if retryable && r.Context().Err() == nil {
			// Next sweep readmits it if it recovers; the eviction event
			// carries the request's trace ID.
			rt.setHealthy(b, false, "transport_error", tid)
		}
		return fwdFailed
	}
	defer resp.Body.Close()
	sp.SetInt("status", int64(resp.StatusCode))
	if resp.StatusCode >= http.StatusInternalServerError {
		sp.Fail()
	}
	if retryable && resp.StatusCode == http.StatusServiceUnavailable {
		// A replica refusing min_epoch (or mid-bootstrap): drain and let
		// the caller try a fresher backend.
		io.Copy(io.Discard, resp.Body)
		return fwdUnavailable
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Qbs-Backend", b.url)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return fwdDone
}

// routerBackendMetrics is one backend's row in the router's /metrics.
type routerBackendMetrics struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Epoch    uint64 `json:"epoch"`
	Inflight int64  `json:"inflight"`
}

// serveHealthz answers the router's own liveness: 200 while at least
// one backend (primary included) is routable, 503 when every backend is
// down — the signal a load balancer fronting several routers needs.
func (rt *Router) serveHealthz(w http.ResponseWriter) {
	healthy := 0
	for _, b := range append([]*backend{rt.primary}, rt.replicas...) {
		if b.healthy.Load() {
			healthy++
		}
	}
	if healthy == 0 {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "no routable backend")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"healthy_backends\":%d}\n", healthy)
}

// serveMetrics reports the routing table as JSON: each backend's URL,
// health bit, last probed epoch, and current in-flight count. With
// ?format=prometheus (or a text Accept header) it renders the router
// registry — picks/retries/failovers and backend gauges — plus the
// process-wide series as Prometheus text instead.
func (rt *Router) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if server.WantsPromText(r) {
		w.Header().Set("Content-Type", obs.PromContentType)
		_ = obs.WritePrometheus(w, rt.reg, obs.Default)
		return
	}
	row := func(b *backend) routerBackendMetrics {
		return routerBackendMetrics{
			URL:      b.url,
			Healthy:  b.healthy.Load(),
			Epoch:    b.epoch.Load(),
			Inflight: b.inflight.Load(),
		}
	}
	resp := struct {
		Primary  routerBackendMetrics   `json:"primary"`
		Replicas []routerBackendMetrics `json:"replicas"`
	}{Primary: row(rt.primary), Replicas: []routerBackendMetrics{}}
	for _, b := range rt.replicas {
		resp.Replicas = append(resp.Replicas, row(b))
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// serveTraces lists the router's own retained traces (summaries, newest
// first), honouring the same ?n=/?min_ms=/?error= filters as the
// backend servers' /debug/traces.
func (rt *Router) serveTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if raw := q.Get("n"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > 1024 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("parameter \"n\" must be an integer in [1,1024], got %q", raw))
			return
		}
		limit = n
	}
	var minDur time.Duration
	if raw := q.Get("min_ms"); raw != "" {
		ms, err := strconv.ParseFloat(raw, 64)
		if err != nil || ms < 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("parameter \"min_ms\" must be a non-negative number, got %q", raw))
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	errOnly := q.Get("error") == "1" || q.Get("error") == "true"
	stored := rt.tracer.Store().Recent(limit, minDur, errOnly)
	summaries := make([]obs.TraceSummary, len(stored))
	for i, st := range stored {
		summaries[i] = st.Summary()
	}
	resp := struct {
		Count  int                `json:"count"`
		Traces []obs.TraceSummary `json:"traces"`
	}{Count: len(stored), Traces: summaries}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// serveTraceByID assembles the full cross-process span tree for one
// trace: the router's locally retained spans merged with whatever each
// backend retained under the same ID (fetched over its own
// /debug/traces/{id}, deduplicated by span ID). Backends that dropped
// the trace — or are down — simply contribute nothing; the tree is the
// union of what survived tail sampling at every tier.
func (rt *Router) serveTraceByID(w http.ResponseWriter, r *http.Request, id string) {
	if id == "" || strings.ContainsAny(id, "/?#") {
		httpError(w, http.StatusBadRequest, "malformed trace id")
		return
	}
	merged := rt.tracer.Store().Get(id)
	for _, b := range append([]*backend{rt.primary}, rt.replicas...) {
		if st := rt.fetchTrace(r, b.url, id); st != nil {
			merged = obs.MergeStored(merged, st)
		}
	}
	if merged == nil {
		httpError(w, http.StatusNotFound,
			fmt.Sprintf("trace %q not found on the router or any backend", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(merged)
}

// fetchTrace pulls one backend's view of a trace; nil when the backend
// is unreachable or never retained it.
func (rt *Router) fetchTrace(r *http.Request, base, id string) *obs.StoredTrace {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, base+"/debug/traces/"+id, nil)
	if err != nil {
		return nil
	}
	resp, err := rt.probeClient.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var st obs.StoredTrace
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return nil
	}
	if st.TraceID != id {
		return nil
	}
	return &st
}

// Backends reports the routing table — observability for tests and the
// qbs-server -router log line.
func (rt *Router) Backends() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "primary %s (epoch %d, healthy %v)", rt.primary.url, rt.primary.epoch.Load(), rt.primary.healthy.Load())
	for i, b := range rt.replicas {
		fmt.Fprintf(&sb, "; replica[%d] %s (epoch %d, healthy %v, inflight %d)",
			i, b.url, b.epoch.Load(), b.healthy.Load(), b.inflight.Load())
	}
	return sb.String()
}

// ReplicaHealth reports each replica's current healthy bit, in the
// order the replicas were configured.
func (rt *Router) ReplicaHealth() []bool {
	out := make([]bool, len(rt.replicas))
	for i, b := range rt.replicas {
		out[i] = b.healthy.Load()
	}
	return out
}
