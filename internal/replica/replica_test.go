package replica

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qbs"
	"qbs/internal/dynamic"
	"qbs/internal/graph"
	"qbs/internal/server"
	"qbs/internal/store"
)

// primaryFixture is an in-process primary: a durable dynamic index, its
// store, and an HTTP server exposing both the serving API and the
// replication feed — the exact composition qbs-server -primary runs.
type primaryFixture struct {
	g  *graph.Graph
	d  *dynamic.Index
	st *store.Store
	pr *Primary
	ts *httptest.Server
}

func newPrimaryFixture(t *testing.T, segBytes int64, popts PrimaryOptions) *primaryFixture {
	t.Helper()
	g := graph.BarabasiAlbert(300, 3, 7)
	d, err := dynamic.New(g, g.TopDegreeVertices(8), dynamic.Options{CompactFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(t.TempDir(), d, store.Options{SegmentBytes: segBytes, SyncEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	pr := NewPrimary(st, popts)
	t.Cleanup(pr.Close)
	mux := http.NewServeMux()
	mux.Handle("/replication/", pr)
	mux.Handle("/", server.NewMutable(qbs.AdoptDynamic(d)))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return &primaryFixture{g: g, d: d, st: st, pr: pr, ts: ts}
}

// mutate drives count deterministic valid edge mutations against the
// primary index.
func (p *primaryFixture) mutate(t *testing.T, count int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := p.d.NumVertices()
	for applied := 0; applied < count; {
		u := graph.V(rng.Intn(n))
		w := graph.V(rng.Intn(n))
		if u == w {
			continue
		}
		res, err := p.d.ApplyEdge(u, w, !p.d.HasEdge(u, w))
		if err != nil {
			t.Fatal(err)
		}
		if res.Applied {
			applied++
		}
	}
}

func startReplica(t *testing.T, primaryURL string, opts Options) *Replica {
	t.Helper()
	if opts.PollInterval == 0 {
		opts.PollInterval = 2 * time.Millisecond
	}
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	rep, err := Start(primaryURL, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Stop)
	return rep
}

func waitFor(t *testing.T, timeout time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// assertBitIdentical compares the full persistent state of two dynamic
// indexes: epoch, landmarks, every label and distance column, σ, Δ and
// the (order-normalised) edge set.
func assertBitIdentical(t *testing.T, want, got *dynamic.Index) {
	t.Helper()
	pw, pg := want.Persistent(), got.Persistent()
	if pw.Epoch != pg.Epoch {
		t.Fatalf("epoch diverged: primary %d, replica %d", pw.Epoch, pg.Epoch)
	}
	if !slices.Equal(pw.Landmarks, pg.Landmarks) {
		t.Fatalf("landmarks diverged")
	}
	if !bytes.Equal(pw.Sigma, pg.Sigma) {
		t.Fatalf("sigma diverged at epoch %d", pw.Epoch)
	}
	if len(pw.Labels) != len(pg.Labels) || len(pw.Dists) != len(pg.Dists) {
		t.Fatalf("column counts diverged")
	}
	for r := range pw.Labels {
		if !bytes.Equal(pw.Labels[r], pg.Labels[r]) {
			t.Fatalf("label column %d diverged at epoch %d", r, pw.Epoch)
		}
		if !slices.Equal(pw.Dists[r], pg.Dists[r]) {
			t.Fatalf("distance column %d diverged at epoch %d", r, pw.Epoch)
		}
	}
	if len(pw.Delta) != len(pg.Delta) {
		t.Fatalf("delta arity diverged: %d vs %d", len(pw.Delta), len(pg.Delta))
	}
	for k := range pw.Delta {
		if len(pw.Delta[k]) != len(pg.Delta[k]) {
			t.Fatalf("delta[%d] length diverged", k)
		}
		for i := range pw.Delta[k] {
			if pw.Delta[k][i] != pg.Delta[k][i] {
				t.Fatalf("delta[%d][%d] diverged", k, i)
			}
		}
	}
	ew, eg := pw.Graph.Edges(), pg.Graph.Edges()
	norm := func(es []graph.Edge) {
		slices.SortFunc(es, func(a, b graph.Edge) int {
			if a.U != b.U {
				return int(a.U - b.U)
			}
			return int(a.W - b.W)
		})
	}
	norm(ew)
	norm(eg)
	if !slices.Equal(ew, eg) {
		t.Fatalf("edge sets diverged: %d vs %d edges", len(ew), len(eg))
	}
}

// TestReplicaConvergesBitIdentical is the acceptance-criterion test: a
// replica tails the primary through >1k mutations, ≥2 compaction epochs
// and ≥2 checkpoints (forcing segment rotation and pruning with the
// replica's lease registered) and lands bit-identical — same epoch,
// labels, σ, Δ and edge set.
func TestReplicaConvergesBitIdentical(t *testing.T) {
	p := newPrimaryFixture(t, 8<<10, PrimaryOptions{})
	rep := startReplica(t, p.ts.URL, Options{})

	for phase := 0; phase < 3; phase++ {
		p.mutate(t, 350, int64(100+phase))
		if err := p.d.Compact(); err != nil {
			t.Fatal(err)
		}
		if _, err := p.st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	p.mutate(t, 50, 999)
	target := p.d.Epoch()
	if target < 1050 {
		t.Fatalf("primary only reached epoch %d, want > 1050", target)
	}

	waitFor(t, 60*time.Second, "replica to converge", func() bool { return rep.Epoch() == p.d.Epoch() })
	assertBitIdentical(t, p.d, rep.Dynamic())

	// Lag must read as zero once converged.
	st := rep.Status()
	if st.PrimaryEpoch < st.Epoch || st.LagBytes < 0 {
		t.Fatalf("bad status after convergence: %+v", st)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("tail loop unhealthy after convergence: %v", err)
	}
}

// TestReplicaServesReads exercises the replica's HTTP surface: reads
// answer with the primary's values, min_epoch gates with 503 +
// Retry-After until the replica catches up, and /metrics reports lag.
func TestReplicaServesReads(t *testing.T) {
	p := newPrimaryFixture(t, 0, PrimaryOptions{})
	rep := startReplica(t, p.ts.URL, Options{})
	p.mutate(t, 100, 42)
	waitFor(t, 30*time.Second, "replica to converge", func() bool { return rep.Epoch() == p.d.Epoch() })

	h := rep.Handler()
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/distance?u=0&v=5")
	if rec.Code != 200 {
		t.Fatalf("/distance: %d %s", rec.Code, rec.Body)
	}
	var dist struct {
		Distance *int32 `json:"distance"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dist); err != nil {
		t.Fatal(err)
	}
	want := p.d.Distance(0, 5)
	if dist.Distance == nil || *dist.Distance != want {
		t.Fatalf("replica distance %v, primary %d", dist.Distance, want)
	}

	// A min_epoch the replica already satisfies answers normally …
	if rec := get(fmt.Sprintf("/spg?u=0&v=5&min_epoch=%d", rep.Epoch())); rec.Code != 200 {
		t.Fatalf("satisfied min_epoch: %d", rec.Code)
	}
	// … a future one gets 503 + Retry-After.
	rec = get(fmt.Sprintf("/spg?u=0&v=5&min_epoch=%d", rep.Epoch()+1000))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("future min_epoch: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	rec = get("/metrics")
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	var m server.MetricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Replication == nil {
		t.Fatal("replica /metrics missing replication section")
	}
	if m.Epoch == nil || *m.Epoch != rep.Epoch() {
		t.Fatalf("metrics epoch %v, want %d", m.Epoch, rep.Epoch())
	}
	// Writes must not exist on a replica.
	recW := httptest.NewRecorder()
	h.ServeHTTP(recW, httptest.NewRequest("POST", "/edges", strings.NewReader(`{"u":0,"v":5}`)))
	if recW.Code == 200 {
		t.Fatal("replica accepted a write")
	}
}

// TestReplicaResumesMidTail kills the replica's connection to the
// primary mid-stream (a flaky proxy starts failing every request) and
// verifies the tail resumes from the last applied epoch and converges
// bit-identically once the link heals.
func TestReplicaResumesMidTail(t *testing.T) {
	p := newPrimaryFixture(t, 8<<10, PrimaryOptions{})

	target, err := url.Parse(p.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var down atomic.Bool
	proxy := httputil.NewSingleHostReverseProxy(target)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "link down", http.StatusBadGateway)
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	rep := startReplica(t, flaky.URL, Options{})
	p.mutate(t, 200, 1)
	waitFor(t, 30*time.Second, "replica to catch up pre-outage", func() bool { return rep.Epoch() == p.d.Epoch() })

	down.Store(true)
	p.mutate(t, 200, 2)
	if err := p.d.Compact(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "tail loop to notice the outage", func() bool { return rep.Err() != nil })
	// With the link down the replica must hold position. (A poll that
	// slipped past the proxy check before the cut may have delivered a
	// little extra first — what matters is no progress during the
	// outage, and resuming exactly from wherever it parked.)
	parked := rep.Epoch()
	time.Sleep(50 * time.Millisecond)
	if rep.Epoch() != parked {
		t.Fatalf("replica advanced from %d to %d during the outage", parked, rep.Epoch())
	}

	down.Store(false)
	waitFor(t, 30*time.Second, "replica to converge post-outage", func() bool { return rep.Epoch() == p.d.Epoch() })
	assertBitIdentical(t, p.d, rep.Dynamic())
}

// TestReplicaRestartReBootstraps stops a replica entirely, lets the
// primary move on (including a checkpoint), then starts a fresh replica
// in the same cache dir — the killed-process shape — and verifies it
// converges bit-identically.
func TestReplicaRestartReBootstraps(t *testing.T) {
	p := newPrimaryFixture(t, 8<<10, PrimaryOptions{})
	dir := t.TempDir()

	rep := startReplica(t, p.ts.URL, Options{Dir: dir})
	p.mutate(t, 150, 3)
	waitFor(t, 30*time.Second, "first replica to converge", func() bool { return rep.Epoch() == p.d.Epoch() })
	rep.Stop()

	p.mutate(t, 150, 4)
	if _, err := p.st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	p.mutate(t, 50, 5)

	rep2 := startReplica(t, p.ts.URL, Options{Dir: dir})
	waitFor(t, 30*time.Second, "restarted replica to converge", func() bool { return rep2.Epoch() == p.d.Epoch() })
	assertBitIdentical(t, p.d, rep2.Dynamic())
}

// TestRetentionHoldsLiveLease pins the satellite retention contract:
// while a replica's lease is live, checkpoints must not prune the log
// suffix it still needs — even across multiple snapshot generations.
func TestRetentionHoldsLiveLease(t *testing.T) {
	p := newPrimaryFixture(t, 4<<10, PrimaryOptions{LeaseTTL: time.Hour})

	// Replica A converges, then stalls (stops polling, lease left live).
	repA := startReplica(t, p.ts.URL, Options{})
	p.mutate(t, 100, 6)
	waitFor(t, 30*time.Second, "replica A to converge", func() bool { return repA.Epoch() == p.d.Epoch() })
	stalledAt := repA.Epoch()
	repA.Stop()

	// Replica B keeps polling throughout; its renewals recompute the
	// floor, which must stay parked at A's position.
	repB := startReplica(t, p.ts.URL, Options{})
	for i := 0; i < 2; i++ {
		p.mutate(t, 200, int64(7+i))
		if _, err := p.st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 30*time.Second, "replica B to converge", func() bool { return repB.Epoch() == p.d.Epoch() })

	if readGap(t, p.st, stalledAt) {
		t.Fatalf("log pruned past a live lease at epoch %d", stalledAt)
	}
}

// TestRetentionReleasesExpiredLease is the other half: once a stalled
// replica's lease expires (another replica's renewals recompute the
// floor), checkpoints prune past it and its next fetch is told to
// re-bootstrap with 410 Gone.
func TestRetentionReleasesExpiredLease(t *testing.T) {
	p := newPrimaryFixture(t, 4<<10, PrimaryOptions{LeaseTTL: 200 * time.Millisecond})

	repA := startReplica(t, p.ts.URL, Options{})
	p.mutate(t, 100, 16)
	waitFor(t, 30*time.Second, "replica A to converge", func() bool { return repA.Epoch() == p.d.Epoch() })
	stalledAt := repA.Epoch()
	repA.Stop()

	repB := startReplica(t, p.ts.URL, Options{})
	waitFor(t, 10*time.Second, "lease A to expire", func() bool {
		_, ok := p.pr.Leases()[repA.opts.ID]
		return !ok
	})

	// Two checkpoints past A's position: the first retires the create
	// snapshot, the second prunes segments the new oldest snapshot
	// covers — including A's successor records. B must converge (and
	// renew its lease at its new position) before each checkpoint, or
	// its own live lease would rightly park the floor at wherever its
	// replay has reached.
	for i := 0; i < 2; i++ {
		p.mutate(t, 200, int64(17+i))
		waitFor(t, 30*time.Second, "replica B to converge", func() bool { return repB.Epoch() == p.d.Epoch() })
		waitFor(t, 10*time.Second, "lease B to renew past A", func() bool {
			return p.pr.Leases()[repB.opts.ID] > stalledAt
		})
		if _, err := p.st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if !readGap(t, p.st, stalledAt) {
		t.Fatalf("log retained epoch %d after lease expiry and two checkpoints", stalledAt)
	}

	// The stalled replica's next fetch must be told to re-bootstrap.
	resp, err := http.Get(fmt.Sprintf("%s%s?from=%d", p.ts.URL, walPath, stalledAt))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("wal fetch past pruned epoch: %d, want 410", resp.StatusCode)
	}
	waitFor(t, 30*time.Second, "replica B to stay converged", func() bool { return repB.Epoch() == p.d.Epoch() })
}

// readGap reports whether the store can no longer serve the contiguous
// successor of from.
func readGap(t *testing.T, st *store.Store, from uint64) bool {
	t.Helper()
	_, _, gap, err := st.ReadWAL(from, 1<<20, func(store.WALRecord) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	return gap
}

// TestJanitorReleasesLastLease: when the only replica dies, no renewal
// ever recomputes the floor — the janitor must expire the lease on its
// own so checkpoints can prune again.
func TestJanitorReleasesLastLease(t *testing.T) {
	p := newPrimaryFixture(t, 4<<10, PrimaryOptions{LeaseTTL: 150 * time.Millisecond})

	rep := startReplica(t, p.ts.URL, Options{})
	p.mutate(t, 100, 26)
	waitFor(t, 30*time.Second, "replica to converge", func() bool { return rep.Epoch() == p.d.Epoch() })
	stalledAt := rep.Epoch()
	rep.Stop() // the last replica is gone; nothing will renew or poll

	waitFor(t, 10*time.Second, "janitor to expire the lease", func() bool {
		return len(p.pr.Leases()) == 0
	})
	for i := 0; i < 2; i++ {
		p.mutate(t, 200, int64(27+i))
		if _, err := p.st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if !readGap(t, p.st, stalledAt) {
		t.Fatalf("WAL still pinned at epoch %d after the last lease expired", stalledAt)
	}
}

// TestWALFetchGoneWhenWriteQuiet: a fully pruned suffix must answer 410
// even when the primary is write-quiet afterwards (zero records to
// contradict the `from` cursor) — the tip published past `from` is
// proof enough that the records existed and are gone.
func TestWALFetchGoneWhenWriteQuiet(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, 9)
	d, err := dynamic.New(g, g.TopDegreeVertices(4), dynamic.Options{CompactFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	// KeepSnapshots 1: one checkpoint retires the create snapshot and
	// prunes every record it covers — the whole log so far.
	st, err := store.Create(t.TempDir(), d, store.Options{SegmentBytes: 2 << 10, SyncEvery: 16, KeepSnapshots: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	pr := NewPrimary(st, PrimaryOptions{})
	t.Cleanup(pr.Close)
	ts := httptest.NewServer(pr)
	t.Cleanup(ts.Close)

	rng := rand.New(rand.NewSource(29))
	for applied := 0; applied < 100; {
		u, w := graph.V(rng.Intn(200)), graph.V(rng.Intn(200))
		if u == w {
			continue
		}
		res, err := d.ApplyEdge(u, w, !d.HasEdge(u, w))
		if err != nil {
			t.Fatal(err)
		}
		if res.Applied {
			applied++
		}
	}
	if _, err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// No further writes. A replica parked below the tip must get 410,
	// not an endless healthy-looking empty stream.
	resp, err := http.Get(fmt.Sprintf("%s%s?from=%d", ts.URL, walPath, d.Epoch()-50))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("write-quiet truncated fetch: status %d, want 410", resp.StatusCode)
	}
	// At the tip itself, the empty stream is legitimate.
	resp, err = http.Get(fmt.Sprintf("%s%s?from=%d", ts.URL, walPath, d.Epoch()))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tip fetch: status %d, want 200", resp.StatusCode)
	}
}

// TestParkedReplicaFailsHealth engineers the terminal 410 park — link
// cut past the lease TTL, log pruned, link restored — and verifies the
// parked replica turns its /healthz and /epoch to 503 (so routers evict
// it) while still answering queries for debugging.
func TestParkedReplicaFailsHealth(t *testing.T) {
	p := newPrimaryFixture(t, 2<<10, PrimaryOptions{LeaseTTL: 150 * time.Millisecond})

	target, err := url.Parse(p.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var down atomic.Bool
	proxy := httputil.NewSingleHostReverseProxy(target)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "link down", http.StatusBadGateway)
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)

	rep := startReplica(t, flaky.URL, Options{})
	p.mutate(t, 80, 31)
	waitFor(t, 30*time.Second, "replica to converge", func() bool { return rep.Epoch() == p.d.Epoch() })

	// Cut the link, let the lease die, prune past the replica.
	down.Store(true)
	waitFor(t, 10*time.Second, "lease to expire", func() bool { return len(p.pr.Leases()) == 0 })
	for i := 0; i < 2; i++ {
		p.mutate(t, 150, int64(32+i))
		if _, err := p.st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	down.Store(false)
	waitFor(t, 10*time.Second, "tail loop to park", func() bool {
		return errors.Is(rep.Err(), ErrWALTruncated)
	})

	h := rep.Handler()
	probe := func(path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code
	}
	if c := probe("/healthz"); c != http.StatusServiceUnavailable {
		t.Fatalf("parked replica /healthz = %d, want 503", c)
	}
	if c := probe("/epoch"); c != http.StatusServiceUnavailable {
		t.Fatalf("parked replica /epoch = %d, want 503", c)
	}
	if c := probe("/distance?u=0&v=5"); c != http.StatusOK {
		t.Fatalf("parked replica /distance = %d, want 200 (debugging stays up)", c)
	}
}

// TestRouterPassesThrough503WhenAllBehind: when every backend answers
// 503 the router must preserve the retriable 503 + Retry-After signal,
// not flatten it into a terminal 502.
func TestRouterPassesThrough503WhenAllBehind(t *testing.T) {
	prim := newFakeBackend(t, "primary", 10)
	r1 := newFakeBackend(t, "r1", 10)
	prim.fail503.Store(true)
	r1.fail503.Store(true)
	rt := NewRouter(prim.ts.URL, []string{r1.ts.URL}, RouterOptions{
		HealthInterval: 20 * time.Millisecond, Seed: 4,
	})
	defer rt.Stop()

	rec := routeGet(t, rt, "/spg?u=0&v=1&min_epoch=999")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-behind read: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("router 503 without Retry-After")
	}
}

// TestCaughtUpTailNoSpurious410UnderWrites is the regression test for
// the durability-horizon race: a caught-up replica polling at the
// durable tip while writes land concurrently must never be told the log
// was pruned (nothing is pruned here — no checkpoints run). The old
// check re-read DurableEpoch() after ReadWAL's scan, so a write fsynced
// mid-scan made an empty-but-current poll look like a gap and 410-parked
// a healthy replica. SyncEvery=1 keeps the durable horizon moving with
// every append, and the pollers hit the handler in-process so the
// poll-at-tip rate is high enough to fall into the scan window.
func TestCaughtUpTailNoSpurious410UnderWrites(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, 7)
	d, err := dynamic.New(g, g.TopDegreeVertices(8), dynamic.Options{CompactFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Create(t.TempDir(), d, store.Options{SegmentBytes: 64 << 10, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	pr := NewPrimary(st, PrimaryOptions{})
	t.Cleanup(pr.Close)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := rand.New(rand.NewSource(99))
		n := d.NumVertices()
		for {
			select {
			case <-stop:
				return
			default:
			}
			u, w := graph.V(rng.Intn(n)), graph.V(rng.Intn(n))
			if u == w {
				continue
			}
			if _, err := d.ApplyEdge(u, w, !d.HasEdge(u, w)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	defer func() {
		select {
		case <-stop:
		default:
			close(stop)
		}
		<-done
	}()

	var wg sync.WaitGroup
	var spurious atomic.Int64
	for poller := 0; poller < 4; poller++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				from := st.DurableEpoch()
				rec := httptest.NewRecorder()
				pr.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("%s?from=%d", walPath, from), nil))
				switch rec.Code {
				case http.StatusOK:
				case http.StatusGone:
					spurious.Add(1)
					return
				default:
					t.Errorf("wal fetch from %d: status %d", from, rec.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := spurious.Load(); n != 0 {
		t.Fatalf("%d spurious 410s polling at the durable tip under concurrent writes", n)
	}
}

// TestPersistentTailFailureFailsHealth: a replica whose tail loop keeps
// failing for a non-410 reason (here: the primary vanished) must stop
// passing /healthz and /epoch once the grace window elapses — otherwise
// the router keeps routing to a replica that silently stopped advancing
// — while the query endpoints stay up for debugging.
func TestPersistentTailFailureFailsHealth(t *testing.T) {
	p := newPrimaryFixture(t, 4<<10, PrimaryOptions{})
	rep := startReplica(t, p.ts.URL, Options{})
	p.mutate(t, 50, 41)
	waitFor(t, 30*time.Second, "replica to converge", func() bool { return rep.Epoch() == p.d.Epoch() })

	h := rep.Handler()
	probe := func(path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code
	}
	if c := probe("/healthz"); c != http.StatusOK {
		t.Fatalf("healthy replica /healthz = %d, want 200", c)
	}

	p.ts.Close() // primary gone: every poll now fails with a transport error
	waitFor(t, 30*time.Second, "tail loop to start failing", func() bool {
		err := rep.Err()
		return err != nil && !errors.Is(err, ErrWALTruncated)
	})
	waitFor(t, 30*time.Second, "persistent failure to fail health", func() bool {
		return probe("/healthz") == http.StatusServiceUnavailable
	})
	if c := probe("/epoch"); c != http.StatusServiceUnavailable {
		t.Fatalf("failing replica /epoch = %d, want 503", c)
	}
	if c := probe("/distance?u=0&v=5"); c != http.StatusOK {
		t.Fatalf("failing replica /distance = %d, want 200 (debugging stays up)", c)
	}
}

// TestPrimaryCloseReleasesRetention: Close must drop every lease and
// lift the store's pruning floor — with the janitor stopped nothing
// would ever expire a lease again, and a parked floor would pin WAL
// segments (and disk growth) forever.
func TestPrimaryCloseReleasesRetention(t *testing.T) {
	p := newPrimaryFixture(t, 1<<10, PrimaryOptions{})

	// Register a lease at epoch 0 via an ordinary WAL fetch.
	resp, err := http.Get(p.ts.URL + walPath + "?from=0&replica=pinner")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease-registering fetch: status %d", resp.StatusCode)
	}
	if got := p.pr.Leases(); len(got) != 1 || got["pinner"] != 0 {
		t.Fatalf("leases after fetch: %v", got)
	}

	p.pr.Close()
	if got := p.pr.Leases(); len(got) != 0 {
		t.Fatalf("leases survived Close: %v", got)
	}

	// With the floor lifted, checkpoints prune past the dead lease; a
	// post-Close fetch must not re-pin retention either.
	resp, err = http.Get(p.ts.URL + walPath + "?from=0&replica=late-pinner")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if got := p.pr.Leases(); len(got) != 0 {
		t.Fatalf("closed primary granted a lease: %v", got)
	}
	p.mutate(t, 120, 61)
	if _, err := p.st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	p.mutate(t, 120, 62)
	if _, err := p.st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if !readGap(t, p.st, 0) {
		t.Fatal("WAL still retained from epoch 0: Close left the pruning floor parked")
	}
}
