package replica

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"qbs/internal/obs"
)

// fetchProm scrapes url's Prometheus rendering and validates it.
func fetchProm(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s/metrics: status %d", url, resp.StatusCode)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("%s: invalid exposition: %v\n%s", url, err, body)
	}
	return string(body)
}

// seriesValue extracts the value of the first sample whose name+labels
// start with prefix, failing the test when the series is absent.
func seriesValue(t *testing.T, text, prefix string) float64 {
	t.Helper()
	re := regexp.MustCompile("(?m)^" + regexp.QuoteMeta(prefix) + `\S*[ ]([0-9.e+-]+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("series %q not found in exposition:\n%s", prefix, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("series %q: bad value %q", prefix, m[1])
	}
	return v
}

// TestObservabilityAcrossTiers drives a mixed read/write workload
// through the query router over a live primary + WAL-shipped replica
// and asserts the tentpole end to end: every tier serves a valid
// Prometheus exposition, the query-stage and engine series advanced on
// the replica that answered the reads, the WAL series advanced on the
// primary's store, and the replica reports its apply-stream series.
func TestObservabilityAcrossTiers(t *testing.T) {
	fix := newPrimaryFixture(t, 1<<20, PrimaryOptions{})
	rep, err := Start(fix.ts.URL, Options{PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Stop)
	repTS := httptest.NewServer(rep.Handler())
	t.Cleanup(repTS.Close)

	rt := NewRouter(fix.ts.URL, []string{repTS.URL}, RouterOptions{
		HealthInterval: 20 * time.Millisecond, Seed: 1,
	})
	t.Cleanup(rt.Stop)
	rtTS := httptest.NewServer(rt)
	t.Cleanup(rtTS.Close)

	// Mixed workload through the router: edge writes (forwarded to the
	// primary, landing in its WAL) interleaved with SPG reads (fanned to
	// the replica).
	client := rtTS.Client()
	for i := 0; i < 20; i++ {
		body := strings.NewReader(`{"u":` + strconv.Itoa(i) + `,"v":` + strconv.Itoa(i+40) + `}`)
		resp, err := client.Post(rtTS.URL+"/edges", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("write %d: status %d", i, resp.StatusCode)
		}
		resp, err = client.Get(rtTS.URL + "/spg?u=0&v=" + strconv.Itoa(50+i))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d: status %d", i, resp.StatusCode)
		}
	}

	// Let the replica drain the WAL tail.
	deadline := time.Now().Add(5 * time.Second)
	for rep.Epoch() < fix.d.Epoch() {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at epoch %d, primary at %d", rep.Epoch(), fix.d.Epoch())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Replica mux: query-path and apply-stream series advanced. The WAL
	// series ride along via the process-wide registry (the primary's
	// store lives in this process too).
	repText := fetchProm(t, repTS.URL)
	if v := seriesValue(t, repText, `qbs_query_stage_ns_count{stage="sketch"}`); v == 0 {
		t.Fatal("replica served reads but recorded no sketch spans")
	}
	if v := seriesValue(t, repText, "qbs_query_label_entries_total"); v == 0 {
		t.Fatal("engine label-entry counter did not advance")
	}
	if v := seriesValue(t, repText, "qbs_replica_applied_records_total"); v == 0 {
		t.Fatal("replica applied records but its counter is zero")
	}
	if v := seriesValue(t, repText, "qbs_replica_apply_batch_ns_count"); v == 0 {
		t.Fatal("apply-batch histogram recorded nothing")
	}
	if v := seriesValue(t, repText, "qbs_wal_append_ns_count"); v == 0 {
		t.Fatal("WAL append histogram recorded nothing")
	}

	// Primary mux: the forwarded writes were counted per endpoint.
	primText := fetchProm(t, fix.ts.URL)
	if v := seriesValue(t, primText, `qbs_http_requests_total{endpoint="/edges"}`); v < 20 {
		t.Fatalf("primary /edges requests %v, want >= 20", v)
	}

	// Router mux: routing decisions are series too.
	rtText := fetchProm(t, rtTS.URL)
	if v := seriesValue(t, rtText, "qbs_router_picks_total"); v == 0 {
		t.Fatal("router recorded no picks")
	}
}
