// Package analysis provides the shortest-path-graph analysis toolkit
// behind the paper's motivating applications (§1): path enumeration and
// counting, common links (vertices shared by all shortest paths),
// interdiction sets (critical vertices and edges whose removal destroys
// all shortest paths), and shortest-path rerouting sequences.
//
// All functions operate on an SPG plus a distance oracle for its
// vertices (any func(V) int32 giving the distance from the SPG source;
// an Index.Distance closure works). The SPG is first converted into its
// distance-layered DAG, the shared representation of this package.
package analysis

import (
	"math"
	"sort"

	"qbs/internal/graph"
)

// DAG is a shortest path graph oriented by distance from the source:
// every SPG edge appears once, pointing from the endpoint closer to the
// source toward the endpoint closer to the target. Paths from Source to
// Target in the DAG are exactly the shortest paths of the SPG.
type DAG struct {
	Source, Target graph.V
	Dist           int32
	// Next[v] lists the out-neighbours of v (toward Target), sorted.
	Next map[graph.V][]graph.V
	// Prev[v] lists the in-neighbours of v (toward Source), sorted.
	Prev map[graph.V][]graph.V
	// Depth[v] is the distance of v from Source.
	Depth map[graph.V]int32
	// Vertices in ascending depth order (ties by id).
	Vertices []graph.V
}

// BuildDAG layers an SPG by distance from its source. distFromSource
// must return d_G(Source, v) for every vertex of the SPG (e.g. an index
// distance closure). Returns nil for trivial or disconnected SPGs.
func BuildDAG(spg *graph.SPG, distFromSource func(graph.V) int32) *DAG {
	if spg.Dist == graph.InfDist || spg.Source == spg.Target {
		return nil
	}
	d := &DAG{
		Source: spg.Source,
		Target: spg.Target,
		Dist:   spg.Dist,
		Next:   make(map[graph.V][]graph.V),
		Prev:   make(map[graph.V][]graph.V),
		Depth:  make(map[graph.V]int32),
	}
	for _, v := range spg.Vertices() {
		d.Depth[v] = distFromSource(v)
		d.Vertices = append(d.Vertices, v)
	}
	sort.Slice(d.Vertices, func(i, j int) bool {
		di, dj := d.Depth[d.Vertices[i]], d.Depth[d.Vertices[j]]
		if di != dj {
			return di < dj
		}
		return d.Vertices[i] < d.Vertices[j]
	})
	for _, e := range spg.Edges() {
		u, w := e.U, e.W
		switch {
		case d.Depth[u]+1 == d.Depth[w]:
			d.Next[u] = append(d.Next[u], w)
			d.Prev[w] = append(d.Prev[w], u)
		case d.Depth[w]+1 == d.Depth[u]:
			d.Next[w] = append(d.Next[w], u)
			d.Prev[u] = append(d.Prev[u], w)
		}
	}
	for _, m := range []map[graph.V][]graph.V{d.Next, d.Prev} {
		for _, ns := range m {
			sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		}
	}
	return d
}

// satAdd adds two non-negative path counts, saturating at MaxInt64.
// Saturation is sticky: once a count hits the ceiling every count
// derived from it stays there.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// satMul multiplies two non-negative path counts, saturating at
// MaxInt64.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// CountPaths returns the number of distinct shortest paths, computed by
// DP over the DAG. Path counts grow exponentially with distance (a
// chain of d diamonds has 2^d shortest paths), so the count saturates
// at math.MaxInt64 instead of silently overflowing; saturated reports
// whether the ceiling was hit — the true count is then >= MaxInt64.
// Returns (0, false) for nil DAGs.
func (d *DAG) CountPaths() (n int64, saturated bool) {
	if d == nil {
		return 0, false
	}
	from, sat := d.pathsFromSource()
	total := from[d.Target]
	return total, sat && total == math.MaxInt64
}

// pathsFromSource counts paths Source→v for every DAG vertex,
// saturating at MaxInt64; the second result reports whether any count
// saturated.
func (d *DAG) pathsFromSource() (map[graph.V]int64, bool) {
	counts := map[graph.V]int64{d.Source: 1}
	saturated := false
	for _, v := range d.Vertices { // ascending depth: topological order
		c := counts[v]
		if c == 0 {
			continue
		}
		for _, w := range d.Next[v] {
			s := satAdd(counts[w], c)
			if s == math.MaxInt64 {
				saturated = true
			}
			counts[w] = s
		}
	}
	return counts, saturated
}

// pathsToTarget counts paths v→Target for every DAG vertex, saturating
// at MaxInt64.
func (d *DAG) pathsToTarget() (map[graph.V]int64, bool) {
	counts := map[graph.V]int64{d.Target: 1}
	saturated := false
	for i := len(d.Vertices) - 1; i >= 0; i-- { // descending depth
		v := d.Vertices[i]
		c := counts[v]
		if c == 0 {
			continue
		}
		for _, w := range d.Prev[v] {
			s := satAdd(counts[w], c)
			if s == math.MaxInt64 {
				saturated = true
			}
			counts[w] = s
		}
	}
	return counts, saturated
}

// CountDiPaths counts the distinct shortest directed Source→Target
// paths of a DiSPG by the same layered DP, saturating at MaxInt64.
// distFromSource must give d(Source, v) for every DiSPG vertex (an
// index Distance closure works). Arcs already carry their orientation,
// so no re-layering of edges is needed — only a depth-sorted vertex
// order. Returns (0, false) for disconnected pairs and (1, false) for
// the trivial pair.
func CountDiPaths(spg *graph.DiSPG, distFromSource func(graph.V) int32) (n int64, saturated bool) {
	if spg.Source == spg.Target {
		return 1, false
	}
	if spg.Dist == graph.InfDist {
		return 0, false
	}
	vs := spg.Vertices()
	depth := make(map[graph.V]int32, len(vs))
	for _, v := range vs {
		depth[v] = distFromSource(v)
	}
	sort.Slice(vs, func(i, j int) bool {
		di, dj := depth[vs[i]], depth[vs[j]]
		if di != dj {
			return di < dj
		}
		return vs[i] < vs[j]
	})
	next := make(map[graph.V][]graph.V, len(vs))
	for _, a := range spg.Arcs() {
		if depth[a.From]+1 == depth[a.To] {
			next[a.From] = append(next[a.From], a.To)
		}
	}
	counts := map[graph.V]int64{spg.Source: 1}
	for _, v := range vs {
		c := counts[v]
		if c == 0 {
			continue
		}
		for _, w := range next[v] {
			s := satAdd(counts[w], c)
			if s == math.MaxInt64 {
				saturated = true
			}
			counts[w] = s
		}
	}
	total := counts[spg.Target]
	return total, saturated && total == math.MaxInt64
}

// EnumeratePaths lists up to limit shortest paths in lexicographic
// order of their vertex sequences (limit ≤ 0 = unlimited; beware of
// exponential path counts).
func (d *DAG) EnumeratePaths(limit int) [][]graph.V {
	if d == nil {
		return nil
	}
	var out [][]graph.V
	var dfs func(v graph.V, path []graph.V) bool
	dfs = func(v graph.V, path []graph.V) bool {
		if limit > 0 && len(out) >= limit {
			return false
		}
		if v == d.Target {
			out = append(out, append([]graph.V(nil), path...))
			return limit <= 0 || len(out) < limit
		}
		for _, w := range d.Next[v] {
			if !dfs(w, append(path, w)) {
				return false
			}
		}
		return true
	}
	dfs(d.Source, []graph.V{d.Source})
	return out
}

// CommonLinks returns the interior vertices that lie on every shortest
// path (the Shortest Path Common Links problem): v is common iff
// paths(Source→v) × paths(v→Target) equals the total path count. (With
// saturated counts the product test degrades to an approximation; use
// CriticalVertices, which is count-free, when exactness matters on
// astronomically path-rich pairs.)
func (d *DAG) CommonLinks() []graph.V {
	if d == nil {
		return nil
	}
	from, _ := d.pathsFromSource()
	to, _ := d.pathsToTarget()
	total := from[d.Target]
	if total == 0 {
		return nil
	}
	var out []graph.V
	for _, v := range d.Vertices {
		if v == d.Source || v == d.Target {
			continue
		}
		if satMul(from[v], to[v]) == total {
			out = append(out, v)
		}
	}
	return out
}

// PathBetweenness returns, for every interior vertex, the fraction of
// shortest paths passing through it — the pair-restricted betweenness
// the SPG makes cheap to compute exactly.
func (d *DAG) PathBetweenness() map[graph.V]float64 {
	if d == nil {
		return nil
	}
	from, _ := d.pathsFromSource()
	to, _ := d.pathsToTarget()
	total := from[d.Target]
	out := make(map[graph.V]float64)
	if total == 0 {
		return out
	}
	for _, v := range d.Vertices {
		if v == d.Source || v == d.Target {
			continue
		}
		out[v] = float64(satMul(from[v], to[v])) / float64(total)
	}
	return out
}

// CriticalVertices solves vertex interdiction on the SPG: the interior
// vertices whose removal disconnects Source from Target within the SPG
// (destroying every shortest path). Equivalent to CommonLinks — a
// vertex blocks all paths iff all paths pass through it — but computed
// independently by reachability, which tests exploit as a
// cross-check.
func (d *DAG) CriticalVertices() []graph.V {
	if d == nil {
		return nil
	}
	var out []graph.V
	for _, v := range d.Vertices {
		if v == d.Source || v == d.Target {
			continue
		}
		if !d.reachableAvoiding(v, graph.Edge{U: -1, W: -1}) {
			out = append(out, v)
		}
	}
	return out
}

// CriticalEdges solves edge interdiction on the SPG: the edges whose
// removal destroys every shortest path.
func (d *DAG) CriticalEdges() []graph.Edge {
	if d == nil {
		return nil
	}
	var out []graph.Edge
	for _, v := range d.Vertices {
		for _, w := range d.Next[v] {
			e := graph.Edge{U: v, W: w}.Normalize()
			if !d.reachableAvoiding(-1, e) {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].W < out[j].W
	})
	return out
}

// reachableAvoiding BFSes Source→Target over the DAG skipping a banned
// vertex and/or banned edge.
func (d *DAG) reachableAvoiding(banned graph.V, bannedEdge graph.Edge) bool {
	if d.Source == banned || d.Target == banned {
		return false
	}
	seen := map[graph.V]bool{d.Source: true}
	queue := []graph.V{d.Source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == d.Target {
			return true
		}
		for _, w := range d.Next[v] {
			if w == banned || seen[w] {
				continue
			}
			if e := (graph.Edge{U: v, W: w}.Normalize()); e == bannedEdge {
				continue
			}
			seen[w] = true
			queue = append(queue, w)
		}
	}
	return false
}

// Reroute finds a shortest rerouting sequence between two shortest
// paths: a chain of shortest paths each differing from the previous in
// exactly one vertex (the Shortest Path Rerouting problem). Both input
// paths must be paths of the DAG. Returns nil when no sequence exists.
// maxPaths bounds the enumerated path universe (≤ 0 = 4096).
func (d *DAG) Reroute(from, to []graph.V, maxPaths int) [][]graph.V {
	if d == nil {
		return nil
	}
	if maxPaths <= 0 {
		maxPaths = 4096
	}
	paths := d.EnumeratePaths(maxPaths)
	src, dst := -1, -1
	for i, p := range paths {
		if equalPath(p, from) {
			src = i
		}
		if equalPath(p, to) {
			dst = i
		}
	}
	if src < 0 || dst < 0 {
		return nil
	}
	prev := make([]int, len(paths))
	for i := range prev {
		prev[i] = -2
	}
	prev[src] = -1
	queue := []int{src}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == dst {
			var seq [][]graph.V
			for at := dst; at != -1; at = prev[at] {
				seq = append(seq, paths[at])
			}
			reverse(seq)
			return seq
		}
		for y := range paths {
			if prev[y] == -2 && differByOneVertex(paths[x], paths[y]) {
				prev[y] = x
				queue = append(queue, y)
			}
		}
	}
	return nil
}

func equalPath(a, b []graph.V) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func differByOneVertex(a, b []graph.V) bool {
	if len(a) != len(b) {
		return false
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
			if diff > 1 {
				return false
			}
		}
	}
	return diff == 1
}

func reverse(s [][]graph.V) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
