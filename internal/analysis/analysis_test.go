package analysis

import (
	"math"
	"math/rand"
	"testing"

	"qbs/internal/bfs"
	"qbs/internal/graph"
)

// dagFor builds the DAG of the oracle SPG for a pair.
func dagFor(g *graph.Graph, u, v graph.V) *DAG {
	spg := bfs.OracleSPG(g, u, v)
	dist := bfs.Distances(g, u)
	return BuildDAG(spg, func(x graph.V) int32 { return dist[x] })
}

// diamond is two parallel 2-hop routes plus a long detour:
// 0-1-3, 0-2-3 and 0-4-5-3.
func diamond() *graph.Graph {
	return graph.MustFromEdges(6, []graph.Edge{
		{U: 0, W: 1}, {U: 1, W: 3}, {U: 0, W: 2}, {U: 2, W: 3},
		{U: 0, W: 4}, {U: 4, W: 5}, {U: 5, W: 3},
	})
}

func TestBuildDAGLayers(t *testing.T) {
	d := dagFor(diamond(), 0, 3)
	if d == nil || d.Dist != 2 {
		t.Fatalf("dag: %+v", d)
	}
	if len(d.Vertices) != 4 {
		t.Fatalf("vertices: %v", d.Vertices)
	}
	if got := d.Next[0]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Next[0] = %v", got)
	}
	if got := d.Prev[3]; len(got) != 2 {
		t.Fatalf("Prev[3] = %v", got)
	}
}

func TestBuildDAGTrivial(t *testing.T) {
	g := diamond()
	spg := bfs.OracleSPG(g, 0, 0)
	if BuildDAG(spg, func(graph.V) int32 { return 0 }) != nil {
		t.Fatal("trivial SPG must give nil DAG")
	}
}

func TestCountPaths(t *testing.T) {
	if n, sat := dagFor(diamond(), 0, 3).CountPaths(); n != 2 || sat {
		t.Fatalf("diamond paths = %d (sat %v), want 2", n, sat)
	}
	// 4-cycle opposite corners: 2 paths.
	if n, _ := dagFor(graph.Cycle(4), 0, 2).CountPaths(); n != 2 {
		t.Fatalf("cycle paths = %d, want 2", n)
	}
	// Grid corner to corner: binomial(4,2)=6 monotone paths on 3x3.
	if n, _ := dagFor(graph.Grid(3, 3), 0, 8).CountPaths(); n != 6 {
		t.Fatalf("grid paths = %d, want 6", n)
	}
}

func TestCountPathsMatchesEnumeration(t *testing.T) {
	g, _ := graph.ErdosRenyi(80, 200, 7).LargestComponent()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 60; i++ {
		u := graph.V(rng.Intn(g.NumVertices()))
		v := graph.V(rng.Intn(g.NumVertices()))
		if u == v {
			continue
		}
		d := dagFor(g, u, v)
		if d == nil {
			continue
		}
		paths := d.EnumeratePaths(0)
		if n, sat := d.CountPaths(); int64(len(paths)) != n || sat {
			t.Fatalf("pair (%d,%d): %d enumerated vs %d counted (sat %v)", u, v, len(paths), n, sat)
		}
		for _, p := range paths {
			if int32(len(p)-1) != d.Dist {
				t.Fatalf("path %v has wrong length", p)
			}
			if p[0] != u || p[len(p)-1] != v {
				t.Fatalf("path %v has wrong endpoints", p)
			}
		}
	}
}

func TestEnumerateLimit(t *testing.T) {
	d := dagFor(graph.Grid(4, 4), 0, 15)
	if got := d.EnumeratePaths(3); len(got) != 3 {
		t.Fatalf("limit ignored: %d", len(got))
	}
}

func TestCommonLinksEqualsCriticalVertices(t *testing.T) {
	// The two independent computations (path counting vs reachability)
	// must agree everywhere.
	g, _ := graph.BarabasiAlbert(150, 2, 9).LargestComponent()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 80; i++ {
		u := graph.V(rng.Intn(g.NumVertices()))
		v := graph.V(rng.Intn(g.NumVertices()))
		if u == v {
			continue
		}
		d := dagFor(g, u, v)
		if d == nil {
			continue
		}
		a, b := d.CommonLinks(), d.CriticalVertices()
		if len(a) != len(b) {
			t.Fatalf("pair (%d,%d): common links %v vs critical %v", u, v, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("pair (%d,%d): %v vs %v", u, v, a, b)
			}
		}
	}
}

func TestCommonLinksChain(t *testing.T) {
	// On a path graph every interior vertex is a common link.
	d := dagFor(graph.Path(5), 0, 4)
	links := d.CommonLinks()
	if len(links) != 3 || links[0] != 1 || links[2] != 3 {
		t.Fatalf("links = %v", links)
	}
	edges := d.CriticalEdges()
	if len(edges) != 4 {
		t.Fatalf("critical edges = %v", edges)
	}
}

func TestNoCriticalOnDisjointRoutes(t *testing.T) {
	d := dagFor(diamond(), 0, 3)
	if links := d.CommonLinks(); len(links) != 0 {
		t.Fatalf("diamond should have no common links: %v", links)
	}
	if edges := d.CriticalEdges(); len(edges) != 0 {
		t.Fatalf("diamond should have no critical edges: %v", edges)
	}
}

func TestPathBetweenness(t *testing.T) {
	d := dagFor(diamond(), 0, 3)
	pb := d.PathBetweenness()
	if pb[1] != 0.5 || pb[2] != 0.5 {
		t.Fatalf("betweenness = %v", pb)
	}
	chain := dagFor(graph.Path(4), 0, 3)
	pb = chain.PathBetweenness()
	if pb[1] != 1 || pb[2] != 1 {
		t.Fatalf("chain betweenness = %v", pb)
	}
}

func TestRerouteAdjacentPaths(t *testing.T) {
	d := dagFor(diamond(), 0, 3)
	paths := d.EnumeratePaths(0)
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	seq := d.Reroute(paths[0], paths[1], 0)
	if len(seq) != 2 {
		t.Fatalf("adjacent paths need a 1-step sequence, got %v", seq)
	}
}

func TestRerouteMultiStep(t *testing.T) {
	// Grid 2x3 corner-to-corner: paths 0-1-2-5, 0-1-4-5, 0-3-4-5 form a
	// chain of single-vertex swaps.
	g := graph.Grid(2, 3)
	d := dagFor(g, 0, 5)
	paths := d.EnumeratePaths(0)
	if len(paths) != 3 {
		t.Fatalf("paths = %v", paths)
	}
	seq := d.Reroute(paths[0], paths[2], 0)
	if len(seq) != 3 {
		t.Fatalf("want 2-swap sequence, got %v", seq)
	}
	for i := 1; i < len(seq); i++ {
		if !differByOneVertex(seq[i-1], seq[i]) {
			t.Fatalf("step %d differs in more than one vertex", i)
		}
	}
}

func TestRerouteImpossible(t *testing.T) {
	// Two vertex-disjoint length-3 routes: intermediate swaps would need
	// paths that do not exist.
	g := graph.MustFromEdges(8, []graph.Edge{
		{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 7},
		{U: 0, W: 3}, {U: 3, W: 4}, {U: 4, W: 7},
	})
	d := dagFor(g, 0, 7)
	paths := d.EnumeratePaths(0)
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	if seq := d.Reroute(paths[0], paths[1], 0); seq != nil {
		t.Fatalf("expected no sequence, got %v", seq)
	}
}

func TestRerouteUnknownPath(t *testing.T) {
	d := dagFor(diamond(), 0, 3)
	bogus := []graph.V{0, 5, 3}
	if seq := d.Reroute(bogus, d.EnumeratePaths(1)[0], 0); seq != nil {
		t.Fatal("bogus path must not reroute")
	}
}

// diamondChain builds a chain of d diamonds: junction vertices
// j_0..j_d, with two parallel interior vertices between consecutive
// junctions. The (j_0, j_d) pair has exactly 2^d shortest paths.
func diamondChain(d int) (*graph.Graph, graph.V, graph.V) {
	n := (d + 1) + 2*d
	b := graph.NewBuilder(n)
	junction := func(i int) graph.V { return graph.V(i * 3) }
	for i := 0; i < d; i++ {
		j0, j1 := junction(i), junction(i+1)
		a, c := graph.V(i*3+1), graph.V(i*3+2)
		b.AddEdge(j0, a)
		b.AddEdge(j0, c)
		b.AddEdge(a, j1)
		b.AddEdge(c, j1)
	}
	return b.MustBuild(), junction(0), junction(d)
}

// TestCountPathsSaturates is the PR 4 overflow regression: a 64-diamond
// chain has 2^64 shortest paths, which used to wrap int64 negative
// (making /spg report negative counts and inverting Truncated). The
// count must now clamp to MaxInt64 and report saturation; one diamond
// short of the ceiling stays exact.
func TestCountPathsSaturates(t *testing.T) {
	// 62 diamonds: 2^62 fits in int64 — exact, not saturated.
	g, u, v := diamondChain(62)
	d := dagFor(g, u, v)
	if n, sat := d.CountPaths(); n != 1<<62 || sat {
		t.Fatalf("62 diamonds: %d (sat %v), want 2^62 exact", n, sat)
	}

	// 64 diamonds: 2^64 overflows — saturate, never go negative.
	g, u, v = diamondChain(64)
	d = dagFor(g, u, v)
	n, sat := d.CountPaths()
	if n != math.MaxInt64 || !sat {
		t.Fatalf("64 diamonds: %d (sat %v), want MaxInt64 saturated", n, sat)
	}
	if n < 0 {
		t.Fatalf("64 diamonds: negative count %d", n)
	}

	// The backward DP saturates consistently too.
	to, toSat := d.pathsToTarget()
	if to[u] != math.MaxInt64 || !toSat {
		t.Fatalf("pathsToTarget: %d (sat %v)", to[u], toSat)
	}

	// Saturated counts must not panic the derived analyses (CommonLinks
	// documents that its product test degrades to an approximation under
	// saturation). The count-free interdiction check stays exact: the
	// critical vertices are precisely the interior junctions.
	_ = d.CommonLinks()
	crit := d.CriticalVertices()
	if len(crit) != 63 {
		t.Fatalf("64-diamond chain: %d critical vertices, want 63 junctions", len(crit))
	}
	for _, v := range crit {
		if v%3 != 0 {
			t.Fatalf("critical vertex %d is not a junction", v)
		}
	}
}
