package dcore

import "qbs/internal/graph"

// SketchPair is one minimizing landmark pair (r, r') of a directed
// sketch: d⊤ = δ(u→r) + d_M(r→r') + δ(r'→v).
type SketchPair struct {
	R, RPrime int // landmark ranks
}

// Sketch is the directed per-query summary structure — the directed
// analogue of core.Sketch, for introspection and the /sketch endpoint.
// Query computes the same quantities internally without allocating.
type Sketch struct {
	U, V  graph.V
	DTop  int32 // the sketch distance bound (graph.InfDist if empty)
	Pairs []SketchPair
}

// Sketch computes the directed query sketch S_{u→v}.
func (ix *Index) Sketch(u, v graph.V) *Sketch {
	R := ix.numLand
	sk := &Sketch{U: u, V: v, DTop: graph.InfDist}
	if u == v {
		sk.DTop = 0
		return sk
	}
	type entry struct {
		rank  int
		sigma int32
	}
	var entU, entV []entry
	if ri := ix.landIdx[u]; ri >= 0 {
		entU = append(entU, entry{rank: int(ri)})
	} else {
		base := int(u) * R
		for i := 0; i < R; i++ {
			if d := ix.labelTo[base+i]; d != NoEntry {
				entU = append(entU, entry{rank: i, sigma: int32(d)})
			}
		}
	}
	if ri := ix.landIdx[v]; ri >= 0 {
		entV = append(entV, entry{rank: int(ri)})
	} else {
		base := int(v) * R
		for i := 0; i < R; i++ {
			if d := ix.labelFrom[base+i]; d != NoEntry {
				entV = append(entV, entry{rank: i, sigma: int32(d)})
			}
		}
	}
	for _, eu := range entU {
		row := eu.rank * R
		for _, ev := range entV {
			dm := ix.distM[row+ev.rank]
			if dm == graph.InfDist {
				continue
			}
			if pi := eu.sigma + dm + ev.sigma; pi < sk.DTop {
				sk.DTop = pi
			}
		}
	}
	if sk.DTop == graph.InfDist {
		return sk
	}
	for _, eu := range entU {
		row := eu.rank * R
		for _, ev := range entV {
			dm := ix.distM[row+ev.rank]
			if dm != graph.InfDist && eu.sigma+dm+ev.sigma == sk.DTop {
				sk.Pairs = append(sk.Pairs, SketchPair{R: eu.rank, RPrime: ev.rank})
			}
		}
	}
	return sk
}
