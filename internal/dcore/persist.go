package dcore

import (
	"fmt"

	"qbs/internal/graph"
)

// Persistence hooks for the durable store (internal/store). The directed
// index is immutable, so persistence is a single frozen snapshot: the
// dual-CSR digraph, the landmark set, σ, both label matrices and the Δ
// lists. The derived meta state (APSP, arc ids) is a pure function of σ
// and is recomputed on restore (O(|R|³), independent of graph size).

// PersistentState is the frozen view of an Index that the durable store
// serialises. All slices alias index state and must not be modified.
type PersistentState struct {
	Graph     *graph.DiGraph
	Landmarks []graph.V
	Sigma     []uint8 // |R|×|R| row-major, row = from-rank
	LabelFrom []uint8 // |V|×|R| row-major
	LabelTo   []uint8 // |V|×|R| row-major
	Delta     [][]graph.Arc
}

// Persistent captures the index state for serialization. Delta lists
// are in the canonical meta-arc order (ascending (from, to) rank — a
// pure function of σ, which is what lets Restore re-derive the arc ids).
func (ix *Index) Persistent() PersistentState {
	return PersistentState{
		Graph:     ix.g,
		Landmarks: ix.landmarks,
		Sigma:     ix.sigma,
		LabelFrom: ix.labelFrom,
		LabelTo:   ix.labelTo,
		Delta:     ix.delta,
	}
}

// Restore reassembles a directed index from persisted state without any
// BFS work: the labels, σ and Δ are adopted by reference (they may be
// views into a read-only snapshot arena — the index never writes them),
// and only the meta-arc table and APSP are recomputed from σ. delta must
// align with the canonical meta-arc order derived from sigma.
func Restore(g *graph.DiGraph, landmarks []graph.V, labelFrom, labelTo, sigma []uint8, delta [][]graph.Arc) (*Index, error) {
	ix, err := newShell(g, Options{Landmarks: landmarks})
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	R := ix.numLand
	if len(labelFrom) != n*R || len(labelTo) != n*R {
		return nil, fmt.Errorf("dcore: restore with %d/%d label bytes, want %d", len(labelFrom), len(labelTo), n*R)
	}
	if len(sigma) != R*R {
		return nil, fmt.Errorf("dcore: restore with %d sigma entries, want %d", len(sigma), R*R)
	}
	ix.labelFrom = labelFrom
	ix.labelTo = labelTo
	ix.sigma = sigma
	ix.metaID = make([]int32, R*R)
	for i := range ix.metaID {
		ix.metaID[i] = -1
	}
	for a := 0; a < R; a++ {
		for b := 0; b < R; b++ {
			s := sigma[a*R+b]
			if a == b || s == NoEntry {
				continue
			}
			ix.metaID[a*R+b] = int32(len(ix.meta))
			ix.meta = append(ix.meta, metaArc{a: a, b: b, weight: int32(s)})
		}
	}
	if len(delta) != len(ix.meta) {
		return nil, fmt.Errorf("dcore: restore with %d delta lists for %d meta arcs", len(delta), len(ix.meta))
	}
	ix.delta = delta
	ix.buildAPSP()
	ix.build.NumLandmarks = R
	ix.build.MetaArcs = len(ix.meta)
	ix.build.LabelEntries = ix.countLabelEntries()
	for _, d := range delta {
		ix.build.DeltaArcs += int64(len(d))
	}
	return ix, nil
}
