// Package dcore is the directed extension of Query-by-Sketch the paper
// claims in §2 ("our work can be easily extended to directed ...
// graphs"), made concrete: answering SPG(u → v) — the union of all
// shortest *directed* u→v paths — on a directed graph.
//
// Every structure of the undirected core gains a direction:
//
//   - each landmark r keeps two labellings: LabelFrom(v) = d(r→v) and
//     LabelTo(v) = d(v→r), each restricted to shortest paths avoiding
//     other landmarks (one forward BFS over out-arcs and one backward
//     BFS over in-arcs per landmark);
//   - the meta-graph is a weighted digraph: σ(a→b) = d_G(a→b) when some
//     shortest a→b path avoids other landmarks;
//   - the sketch bound is d⊤ = min δ(u→r) + d_M(r→r') + δ(r'→v);
//   - the guided search runs a forward BFS from u and a backward BFS
//     from v over the landmark-sparsified digraph, with directed reverse
//     and recover stages.
//
// Correctness mirrors the undirected proofs: shortest directed walks of
// length d(u,v) are simple, prefixes up to the first landmark witness
// LabelTo entries of u, suffixes after the last landmark witness
// LabelFrom entries of v, and landmark-to-landmark segments decompose
// into meta-arcs.
//
// Construction runs on the shared traverse.MultiBFS engine: one
// bit-parallel sweep over the out-adjacency advances up to 64 forward
// landmark BFSes (filling labelFrom and discovering meta-arcs), and one
// sweep over the in-adjacency advances the matching backward BFSes
// (filling labelTo) — two graph sweeps per 64 landmarks instead of two
// per landmark. The scalar per-landmark BFS is retained below as the
// reference implementation; dcore_test pins the engine's labels, σ and
// meta-arcs bit-identical to it.
package dcore

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"qbs/internal/graph"
	"qbs/internal/traverse"
)

// NoEntry marks an absent label entry (distances stored in one byte, as
// in the undirected index).
const NoEntry = uint8(255)

// MaxLabelDist is the largest distance representable in a label byte.
const MaxLabelDist = int32(254)

// ErrDiameterTooLarge mirrors core.ErrDiameterTooLarge.
var ErrDiameterTooLarge = errors.New("dcore: graph distance exceeds 254, cannot encode labels in 8 bits")

// Options configures Build.
type Options struct {
	// NumLandmarks is |R| (default 20, capped at 254 and |V|).
	NumLandmarks int
	// Landmarks overrides selection (default: top total-degree).
	Landmarks []graph.V
	// Parallelism is the total labelling worker budget (0 = GOMAXPROCS).
	// Workers spread across 64-landmark batches first; leftover budget
	// runs inside each sweep as traverse pool workers. Labels, σ and Δ
	// are bit-identical at every setting.
	Parallelism int
	// Scalar selects the scalar per-landmark reference labelling instead
	// of the bit-parallel engine. The results are bit-identical; the
	// scalar path exists for the oracle property tests and the
	// DirectedTable build-speedup measurement.
	Scalar bool
}

type metaArc struct {
	a, b   int // landmark ranks, a → b
	weight int32
}

// BuildStats reports directed construction cost and size accounting.
type BuildStats struct {
	LabellingTime time.Duration // both directed labellings
	MetaTime      time.Duration // APSP + Δ recovery
	TotalTime     time.Duration
	Parallelism   int
	NumLandmarks  int
	LabelEntries  int64 // non-empty entries across labelFrom and labelTo
	MetaArcs      int
	DeltaArcs     int64
}

// Index is the directed QbS index.
type Index struct {
	g *graph.DiGraph

	landmarks []graph.V
	landIdx   []int16
	numLand   int

	labelFrom []uint8 // |V|×|R| row-major: δ(r → v) over avoiding paths
	labelTo   []uint8 // |V|×|R| row-major: δ(v → r) over avoiding paths

	sigma  []uint8 // |R|×|R| directed meta-arc weights (row = from)
	distM  []int32 // |R|×|R| directed APSP
	meta   []metaArc
	metaID []int32
	delta  [][]graph.Arc

	// degsOut/degsIn cache per-direction degrees for the traversal
	// engines' α/β direction heuristic (an interface Degree call per
	// discovered vertex would dominate the switch bookkeeping).
	degsOut []int32
	degsIn  []int32

	build BuildStats
}

// Graph returns the indexed digraph.
func (ix *Index) Graph() *graph.DiGraph { return ix.g }

// Landmarks returns the landmark vertices in rank order.
func (ix *Index) Landmarks() []graph.V { return ix.landmarks }

// IsLandmark reports whether v is a landmark.
func (ix *Index) IsLandmark(v graph.V) bool { return ix.landIdx[v] >= 0 }

// NumLandmarks returns |R|.
func (ix *Index) NumLandmarks() int { return ix.numLand }

// Stats returns construction statistics.
func (ix *Index) Stats() BuildStats { return ix.build }

// BuildTime returns construction wall time.
func (ix *Index) BuildTime() time.Duration { return ix.build.TotalTime }

// SizeLabelsBytes accounts 2·|R| bytes per vertex (two directed
// labellings).
func (ix *Index) SizeLabelsBytes() int64 {
	return 2 * int64(ix.g.NumVertices()) * int64(ix.numLand)
}

// SizeDeltaBytes accounts 8 bytes per precomputed meta-arc SPG arc.
func (ix *Index) SizeDeltaBytes() int64 { return ix.build.DeltaArcs * 8 }

// Build constructs the directed index.
func Build(g *graph.DiGraph, opts Options) (*Index, error) {
	start := time.Now()
	ix, err := newShell(g, opts)
	if err != nil {
		return nil, err
	}
	parallelism := opts.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}

	labStart := time.Now()
	if opts.Scalar {
		err = ix.buildLabellingScalar(parallelism)
	} else {
		err = ix.buildLabelling(parallelism)
	}
	if err != nil {
		return nil, err
	}
	ix.build.LabellingTime = time.Since(labStart)

	metaStart := time.Now()
	ix.buildAPSP()
	ix.buildDelta()
	ix.build.MetaTime = time.Since(metaStart)

	ix.build.TotalTime = time.Since(start)
	ix.build.Parallelism = parallelism
	ix.build.NumLandmarks = ix.numLand
	return ix, nil
}

// newShell validates the landmark set and prepares the Index skeleton
// (landmark ranks, reverse map, cached degrees) without labels.
func newShell(g *graph.DiGraph, opts Options) (*Index, error) {
	k := opts.NumLandmarks
	if k <= 0 {
		k = 20
	}
	if k > g.NumVertices() {
		k = g.NumVertices()
	}
	if k > 254 {
		k = 254
	}
	landmarks := opts.Landmarks
	if landmarks == nil {
		landmarks = g.TotalDegreeOrder()[:k]
	}
	if len(landmarks) > 254 {
		return nil, fmt.Errorf("dcore: %d landmarks exceed the 254 maximum", len(landmarks))
	}
	ix := &Index{
		g:         g,
		landmarks: landmarks,
		numLand:   len(landmarks),
		landIdx:   make([]int16, g.NumVertices()),
		degsOut:   g.OutDegrees(),
		degsIn:    g.InDegrees(),
	}
	for i := range ix.landIdx {
		ix.landIdx[i] = -1
	}
	for i, r := range landmarks {
		if r < 0 || int(r) >= g.NumVertices() {
			return nil, fmt.Errorf("dcore: landmark %d out of range", r)
		}
		if ix.landIdx[r] >= 0 {
			return nil, fmt.Errorf("dcore: duplicate landmark %d", r)
		}
		ix.landIdx[r] = int16(i)
	}
	return ix, nil
}

// MustBuild is Build that panics on error.
func MustBuild(g *graph.DiGraph, opts Options) *Index {
	ix, err := Build(g, opts)
	if err != nil {
		panic(err)
	}
	return ix
}

// allocLabels allocates both label matrices NoEntry-filled (doubling
// copies: memmove beats a byte loop ~8×).
func (ix *Index) allocLabels() {
	n := ix.g.NumVertices()
	R := ix.numLand
	backing := make([]uint8, 2*n*R)
	if len(backing) > 0 {
		backing[0] = NoEntry
		for filled := 1; filled < len(backing); filled *= 2 {
			copy(backing[filled:], backing[:filled])
		}
	}
	ix.labelFrom = backing[: n*R : n*R]
	ix.labelTo = backing[n*R:]
}

// batchBFS sweeps one batch of up to 64 landmark ranks
// [base, base+len(roots)) through the bit-parallel engine in one
// direction. forward=true walks out-arcs filling labelFrom and
// collecting meta-arcs (base+bit → rj); forward=false walks in-arcs
// filling labelTo (meta-arcs are only collected on the forward pass to
// avoid duplication). Returns the meta-arcs and the number of label
// entries written.
func (ix *Index) batchBFS(eng *traverse.MultiBFS, base int, roots []graph.V, forward bool) ([]metaArc, int64, error) {
	g := ix.g
	R := ix.numLand
	push, pull, deg, labels := g.OutView(), g.InView(), ix.degsOut, ix.labelFrom
	if !forward {
		push, pull, deg, labels = g.InView(), g.OutView(), ix.degsIn, ix.labelTo
	}
	// With the engine's intra-sweep pool on, this settle callback runs
	// concurrently: label-row writes are per-vertex disjoint, the rare
	// meta-arc appends take a mutex, entry counts go through an atomic.
	var metas []metaArc
	var entries int64
	var entriesA atomic.Int64
	var mu sync.Mutex
	par := eng.Parallelism > 1
	err := eng.RunDirected(push, pull, deg, ix.landIdx, roots, MaxLabelDist,
		func(v graph.V, depth int32, newL, _ uint64) {
			if newL == 0 {
				return
			}
			if rj := ix.landIdx[v]; rj >= 0 {
				if forward {
					if par {
						mu.Lock()
					}
					for w := newL; w != 0; w &= w - 1 {
						metas = append(metas, metaArc{a: base + bits.TrailingZeros64(w), b: int(rj), weight: depth})
					}
					if par {
						mu.Unlock()
					}
				}
			} else {
				if par {
					entriesA.Add(int64(bits.OnesCount64(newL)))
				} else {
					entries += int64(bits.OnesCount64(newL))
				}
				d8 := uint8(depth)
				row := labels[int(v)*R : int(v)*R+R]
				for w := newL; w != 0; w &= w - 1 {
					row[base+bits.TrailingZeros64(w)] = d8
				}
			}
		})
	if err != nil {
		return nil, 0, ErrDiameterTooLarge
	}
	return metas, entries + entriesA.Load(), nil
}

// buildLabelling runs both directed labellings from every landmark in
// bit-parallel batches of 64 (batches distributed over parallel
// workers), then merges and canonicalises the meta-arcs.
func (ix *Index) buildLabelling(parallelism int) error {
	n := ix.g.NumVertices()
	R := ix.numLand
	ix.allocLabels()
	if R == 0 {
		ix.finishMeta(nil)
		return nil
	}

	batches := (R + traverse.MaxSources - 1) / traverse.MaxSources
	perBatch := make([][]metaArc, batches)
	perBatchEntries := make([]int64, batches)
	var firstErr error

	runBatch := func(eng *traverse.MultiBFS, b int) error {
		base := b * traverse.MaxSources
		end := min(base+traverse.MaxSources, R)
		roots := ix.landmarks[base:end]
		metas, fwdEntries, err := ix.batchBFS(eng, base, roots, true)
		if err != nil {
			return err
		}
		_, bwdEntries, err := ix.batchBFS(eng, base, roots, false)
		if err != nil {
			return err
		}
		perBatch[b] = metas
		perBatchEntries[b] = fwdEntries + bwdEntries
		return nil
	}

	// Workers spread across batches first; leftover budget (always, at
	// the paper's |R| = 20 single batch) parallelises each sweep itself.
	outer := parallelism
	if outer > batches {
		outer = batches
	}
	inner := 1
	if outer > 0 {
		inner = parallelism / outer
	}
	if outer <= 1 {
		eng := traverse.NewMultiBFS(n)
		eng.Parallelism = inner
		for b := 0; b < batches; b++ {
			if err := runBatch(eng, b); err != nil {
				return err
			}
		}
	} else {
		var wg sync.WaitGroup
		var mu sync.Mutex
		work := make(chan int)
		for w := 0; w < outer; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				eng := traverse.NewMultiBFS(n)
				eng.Parallelism = inner
				for b := range work {
					if err := runBatch(eng, b); err != nil {
						mu.Lock()
						firstErr = err
						mu.Unlock()
					}
				}
			}()
		}
		for b := 0; b < batches; b++ {
			work <- b
		}
		close(work)
		wg.Wait()
		if firstErr != nil {
			return firstErr
		}
	}

	var all []metaArc
	ix.build.LabelEntries = 0
	for b, metas := range perBatch {
		all = append(all, metas...)
		ix.build.LabelEntries += perBatchEntries[b]
	}
	ix.finishMeta(all)
	return nil
}

// finishMeta canonicalises the discovered meta-arcs — sorted by (from,
// to) rank so the arc order is a pure function of σ, independent of
// discovery order — and freezes σ, the arc list and the rank-pair → arc
// id map. Each (a, b) pair is discovered at most once per forward BFS,
// so weights are unique per pair and dedup order is immaterial.
func (ix *Index) finishMeta(all []metaArc) {
	R := ix.numLand
	sort.Slice(all, func(i, j int) bool {
		if all[i].a != all[j].a {
			return all[i].a < all[j].a
		}
		return all[i].b < all[j].b
	})
	ix.sigma = make([]uint8, R*R)
	ix.metaID = make([]int32, R*R)
	for i := range ix.sigma {
		ix.sigma[i] = NoEntry
		ix.metaID[i] = -1
	}
	for _, m := range all {
		at := m.a*R + m.b
		if ix.sigma[at] == NoEntry {
			ix.sigma[at] = uint8(m.weight)
			ix.metaID[at] = int32(len(ix.meta))
			ix.meta = append(ix.meta, m)
		}
	}
	ix.build.MetaArcs = len(ix.meta)
}

// --- scalar reference labelling ---------------------------------------
//
// One avoiding QL/QN BFS per landmark and direction, kept as the ground
// truth the bit-parallel engine is pinned against (and as the baseline
// of the DirectedTable build-speedup measurement).

type diLabelWS struct {
	depth   []int32
	visited []graph.V
	curL    []graph.V
	curN    []graph.V
	nextL   []graph.V
	nextN   []graph.V
}

func newDiLabelWS(n int) *diLabelWS {
	ws := &diLabelWS{depth: make([]int32, n)}
	for i := range ws.depth {
		ws.depth[i] = -1
	}
	return ws
}

func (ws *diLabelWS) reset() {
	for _, v := range ws.visited {
		ws.depth[v] = -1
	}
	ws.visited = ws.visited[:0]
	ws.curL, ws.curN, ws.nextL, ws.nextN = ws.curL[:0], ws.curN[:0], ws.nextL[:0], ws.nextN[:0]
}

// landmarkBFS runs one avoiding BFS from landmark rank ri. forward=true
// walks out-arcs filling labelFrom and discovering meta-arcs ri→other;
// forward=false walks in-arcs filling labelTo (meta-arcs are only
// collected on the forward pass to avoid duplication).
func (ix *Index) landmarkBFS(ri int, forward bool, ws *diLabelWS) ([]metaArc, bool) {
	g := ix.g
	R := ix.numLand
	root := ix.landmarks[ri]
	ws.reset()
	ws.depth[root] = 0
	ws.visited = append(ws.visited, root)
	ws.curL = append(ws.curL, root)
	var metas []metaArc
	labels := ix.labelFrom
	if !forward {
		labels = ix.labelTo
	}
	neighbors := g.Out
	if !forward {
		neighbors = g.In
	}
	depth := int32(0)
	for len(ws.curL) > 0 || len(ws.curN) > 0 {
		next := depth + 1
		if next > MaxLabelDist {
			return nil, false
		}
		ws.nextL, ws.nextN = ws.nextL[:0], ws.nextN[:0]
		for _, u := range ws.curL {
			for _, v := range neighbors(u) {
				if ws.depth[v] >= 0 {
					continue
				}
				ws.depth[v] = next
				ws.visited = append(ws.visited, v)
				if rj := ix.landIdx[v]; rj >= 0 {
					ws.nextN = append(ws.nextN, v)
					if forward {
						metas = append(metas, metaArc{a: ri, b: int(rj), weight: next})
					}
				} else {
					ws.nextL = append(ws.nextL, v)
					labels[int(v)*R+ri] = uint8(next)
				}
			}
		}
		for _, u := range ws.curN {
			for _, v := range neighbors(u) {
				if ws.depth[v] < 0 {
					ws.depth[v] = next
					ws.visited = append(ws.visited, v)
					ws.nextN = append(ws.nextN, v)
				}
			}
		}
		ws.curL, ws.nextL = ws.nextL, ws.curL
		ws.curN, ws.nextN = ws.nextN, ws.curN
		depth = next
	}
	return metas, true
}

// buildLabellingScalar is the reference construction: two scalar BFSes
// per landmark, landmarks distributed over parallel workers.
func (ix *Index) buildLabellingScalar(parallelism int) error {
	n := ix.g.NumVertices()
	R := ix.numLand
	ix.allocLabels()
	if R == 0 {
		ix.finishMeta(nil)
		return nil
	}
	if parallelism > R {
		parallelism = R
	}
	perLandmark := make([][]metaArc, R)
	overflow := false
	if parallelism <= 1 {
		ws := newDiLabelWS(n)
		for ri := 0; ri < R; ri++ {
			metas, ok := ix.landmarkBFS(ri, true, ws)
			if !ok {
				return ErrDiameterTooLarge
			}
			if _, ok := ix.landmarkBFS(ri, false, ws); !ok {
				return ErrDiameterTooLarge
			}
			perLandmark[ri] = metas
		}
	} else {
		var wg sync.WaitGroup
		var mu sync.Mutex
		work := make(chan int)
		for w := 0; w < parallelism; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := newDiLabelWS(n)
				for ri := range work {
					metas, ok := ix.landmarkBFS(ri, true, ws)
					if ok {
						_, ok = ix.landmarkBFS(ri, false, ws)
					}
					if !ok {
						mu.Lock()
						overflow = true
						mu.Unlock()
						continue
					}
					perLandmark[ri] = metas
				}
			}()
		}
		for ri := 0; ri < R; ri++ {
			work <- ri
		}
		close(work)
		wg.Wait()
		if overflow {
			return ErrDiameterTooLarge
		}
	}
	var all []metaArc
	for _, m := range perLandmark {
		all = append(all, m...)
	}
	ix.build.LabelEntries = ix.countLabelEntries()
	ix.finishMeta(all)
	return nil
}

func (ix *Index) countLabelEntries() int64 {
	var entries int64
	for _, d := range ix.labelFrom {
		if d != NoEntry {
			entries++
		}
	}
	for _, d := range ix.labelTo {
		if d != NoEntry {
			entries++
		}
	}
	return entries
}

// ----------------------------------------------------------------------

func (ix *Index) buildAPSP() {
	R := ix.numLand
	ix.distM = make([]int32, R*R)
	for i := 0; i < R; i++ {
		for j := 0; j < R; j++ {
			switch {
			case i == j:
				ix.distM[i*R+j] = 0
			case ix.sigma[i*R+j] != NoEntry:
				ix.distM[i*R+j] = int32(ix.sigma[i*R+j])
			default:
				ix.distM[i*R+j] = graph.InfDist
			}
		}
	}
	for k := 0; k < R; k++ {
		for i := 0; i < R; i++ {
			dik := ix.distM[i*R+k]
			if dik == graph.InfDist {
				continue
			}
			for j := 0; j < R; j++ {
				if dkj := ix.distM[k*R+j]; dkj != graph.InfDist && dik+dkj < ix.distM[i*R+j] {
					ix.distM[i*R+j] = dik + dkj
				}
			}
		}
	}
}

// onMetaShortestPath reports whether directed meta-arc k lies on a
// shortest i→j meta-path.
func (ix *Index) onMetaShortestPath(i, j, k int) bool {
	R := ix.numLand
	m := ix.meta[k]
	d := ix.distM[i*R+j]
	if d == graph.InfDist {
		return false
	}
	da, db := ix.distM[i*R+m.a], ix.distM[m.b*R+j]
	return da != graph.InfDist && db != graph.InfDist && da+m.weight+db == d
}

// buildDelta recovers the directed SPG of every meta-arc from the two
// labellings: w lies on an avoiding shortest a→b path iff
// labelFrom[w][a] + labelTo[w][b] = σ(a→b); arcs connect consecutive
// labelFrom levels.
func (ix *Index) buildDelta() {
	g := ix.g
	R := ix.numLand
	n := g.NumVertices()
	ix.delta = make([][]graph.Arc, len(ix.meta))
	for k, m := range ix.meta {
		if m.weight == 1 {
			ix.delta[k] = []graph.Arc{{From: ix.landmarks[m.a], To: ix.landmarks[m.b]}}
		}
	}
	cands := make([][]graph.V, len(ix.meta))
	for v := 0; v < n; v++ {
		base := v * R
		for a := 0; a < R; a++ {
			la := ix.labelFrom[base+a]
			if la == NoEntry {
				continue
			}
			row := a * R
			for b := 0; b < R; b++ {
				lb := ix.labelTo[base+b]
				if lb == NoEntry {
					continue
				}
				id := ix.metaID[row+b]
				if id >= 0 && int32(la)+int32(lb) == ix.meta[id].weight {
					cands[id] = append(cands[id], graph.V(v))
				}
			}
		}
	}
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	for k, m := range ix.meta {
		if m.weight == 1 {
			continue
		}
		va, vb := ix.landmarks[m.a], ix.landmarks[m.b]
		for _, w := range cands[k] {
			level[w] = int32(ix.labelFrom[int(w)*R+m.a])
		}
		arcs := ix.delta[k]
		for _, w := range cands[k] {
			lw := level[w]
			if lw == 1 {
				arcs = append(arcs, graph.Arc{From: va, To: w})
			}
			if lw == m.weight-1 {
				arcs = append(arcs, graph.Arc{From: w, To: vb})
			}
			for _, x := range g.Out(w) {
				if level[x] == lw+1 {
					arcs = append(arcs, graph.Arc{From: w, To: x})
				}
			}
		}
		for _, w := range cands[k] {
			level[w] = -1
		}
		ix.delta[k] = arcs
	}
	ix.build.DeltaArcs = 0
	for _, d := range ix.delta {
		ix.build.DeltaArcs += int64(len(d))
	}
}
