// Package dcore is the directed extension of Query-by-Sketch the paper
// claims in §2 ("our work can be easily extended to directed ...
// graphs"), made concrete: answering SPG(u → v) — the union of all
// shortest *directed* u→v paths — on a directed graph.
//
// Every structure of the undirected core gains a direction:
//
//   - each landmark r keeps two labellings: LabelFrom(v) = d(r→v) and
//     LabelTo(v) = d(v→r), each restricted to shortest paths avoiding
//     other landmarks (one forward BFS over out-arcs and one backward
//     BFS over in-arcs per landmark);
//   - the meta-graph is a weighted digraph: σ(a→b) = d_G(a→b) when some
//     shortest a→b path avoids other landmarks;
//   - the sketch bound is d⊤ = min δ(u→r) + d_M(r→r') + δ(r'→v);
//   - the guided search runs a forward BFS from u and a backward BFS
//     from v over the landmark-sparsified digraph, with directed reverse
//     and recover stages.
//
// Correctness mirrors the undirected proofs: shortest directed walks of
// length d(u,v) are simple, prefixes up to the first landmark witness
// LabelTo entries of u, suffixes after the last landmark witness
// LabelFrom entries of v, and landmark-to-landmark segments decompose
// into meta-arcs.
package dcore

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"qbs/internal/graph"
)

// NoEntry marks an absent label entry (distances stored in one byte, as
// in the undirected index).
const NoEntry = uint8(255)

// ErrDiameterTooLarge mirrors core.ErrDiameterTooLarge.
var ErrDiameterTooLarge = errors.New("dcore: graph distance exceeds 254, cannot encode labels in 8 bits")

// Options configures Build.
type Options struct {
	// NumLandmarks is |R| (default 20, capped at 254 and |V|).
	NumLandmarks int
	// Landmarks overrides selection (default: top total-degree).
	Landmarks []graph.V
	// Parallelism bounds labelling workers (0 = GOMAXPROCS).
	Parallelism int
}

type metaArc struct {
	a, b   int // landmark ranks, a → b
	weight int32
}

// Index is the directed QbS index.
type Index struct {
	g *graph.DiGraph

	landmarks []graph.V
	landIdx   []int16
	numLand   int

	labelFrom []uint8 // |V|×|R|: δ(r → v) over avoiding paths
	labelTo   []uint8 // |V|×|R|: δ(v → r) over avoiding paths

	sigma  []uint8 // |R|×|R| directed meta-arc weights (row = from)
	distM  []int32 // |R|×|R| directed APSP
	meta   []metaArc
	metaID []int32
	delta  [][]graph.Arc

	buildTime time.Duration
}

// Graph returns the indexed digraph.
func (ix *Index) Graph() *graph.DiGraph { return ix.g }

// Landmarks returns the landmark vertices in rank order.
func (ix *Index) Landmarks() []graph.V { return ix.landmarks }

// IsLandmark reports whether v is a landmark.
func (ix *Index) IsLandmark(v graph.V) bool { return ix.landIdx[v] >= 0 }

// BuildTime returns construction wall time.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// SizeLabelsBytes accounts 2·|R| bytes per vertex (two directed
// labellings).
func (ix *Index) SizeLabelsBytes() int64 {
	return 2 * int64(ix.g.NumVertices()) * int64(ix.numLand)
}

// Build constructs the directed index.
func Build(g *graph.DiGraph, opts Options) (*Index, error) {
	start := time.Now()
	k := opts.NumLandmarks
	if k <= 0 {
		k = 20
	}
	if k > g.NumVertices() {
		k = g.NumVertices()
	}
	if k > 254 {
		k = 254
	}
	landmarks := opts.Landmarks
	if landmarks == nil {
		landmarks = g.TotalDegreeOrder()[:k]
	}
	if len(landmarks) > 254 {
		return nil, fmt.Errorf("dcore: %d landmarks exceed the 254 maximum", len(landmarks))
	}
	ix := &Index{
		g:         g,
		landmarks: landmarks,
		numLand:   len(landmarks),
		landIdx:   make([]int16, g.NumVertices()),
	}
	for i := range ix.landIdx {
		ix.landIdx[i] = -1
	}
	for i, r := range landmarks {
		if r < 0 || int(r) >= g.NumVertices() {
			return nil, fmt.Errorf("dcore: landmark %d out of range", r)
		}
		if ix.landIdx[r] >= 0 {
			return nil, fmt.Errorf("dcore: duplicate landmark %d", r)
		}
		ix.landIdx[r] = int16(i)
	}
	if err := ix.buildLabelling(opts.Parallelism); err != nil {
		return nil, err
	}
	ix.buildAPSP()
	ix.buildDelta()
	ix.buildTime = time.Since(start)
	return ix, nil
}

// MustBuild is Build that panics on error.
func MustBuild(g *graph.DiGraph, opts Options) *Index {
	ix, err := Build(g, opts)
	if err != nil {
		panic(err)
	}
	return ix
}

type diLabelWS struct {
	depth   []int32
	visited []graph.V
	curL    []graph.V
	curN    []graph.V
	nextL   []graph.V
	nextN   []graph.V
}

func newDiLabelWS(n int) *diLabelWS {
	ws := &diLabelWS{depth: make([]int32, n)}
	for i := range ws.depth {
		ws.depth[i] = -1
	}
	return ws
}

func (ws *diLabelWS) reset() {
	for _, v := range ws.visited {
		ws.depth[v] = -1
	}
	ws.visited = ws.visited[:0]
	ws.curL, ws.curN, ws.nextL, ws.nextN = ws.curL[:0], ws.curN[:0], ws.nextL[:0], ws.nextN[:0]
}

// landmarkBFS runs one avoiding BFS from landmark rank ri. forward=true
// walks out-arcs filling labelFrom and discovering meta-arcs ri→other;
// forward=false walks in-arcs filling labelTo (meta-arcs are only
// collected on the forward pass to avoid duplication).
func (ix *Index) landmarkBFS(ri int, forward bool, ws *diLabelWS) ([]metaArc, bool) {
	g := ix.g
	R := ix.numLand
	root := ix.landmarks[ri]
	ws.reset()
	ws.depth[root] = 0
	ws.visited = append(ws.visited, root)
	ws.curL = append(ws.curL, root)
	var metas []metaArc
	labels := ix.labelFrom
	if !forward {
		labels = ix.labelTo
	}
	neighbors := g.Out
	if !forward {
		neighbors = g.In
	}
	depth := int32(0)
	for len(ws.curL) > 0 || len(ws.curN) > 0 {
		next := depth + 1
		if next > 254 {
			return nil, false
		}
		ws.nextL, ws.nextN = ws.nextL[:0], ws.nextN[:0]
		for _, u := range ws.curL {
			for _, v := range neighbors(u) {
				if ws.depth[v] >= 0 {
					continue
				}
				ws.depth[v] = next
				ws.visited = append(ws.visited, v)
				if rj := ix.landIdx[v]; rj >= 0 {
					ws.nextN = append(ws.nextN, v)
					if forward {
						metas = append(metas, metaArc{a: ri, b: int(rj), weight: next})
					}
				} else {
					ws.nextL = append(ws.nextL, v)
					labels[int(v)*R+ri] = uint8(next)
				}
			}
		}
		for _, u := range ws.curN {
			for _, v := range neighbors(u) {
				if ws.depth[v] < 0 {
					ws.depth[v] = next
					ws.visited = append(ws.visited, v)
					ws.nextN = append(ws.nextN, v)
				}
			}
		}
		ws.curL, ws.nextL = ws.nextL, ws.curL
		ws.curN, ws.nextN = ws.nextN, ws.curN
		depth = next
	}
	return metas, true
}

func (ix *Index) buildLabelling(parallelism int) error {
	n := ix.g.NumVertices()
	R := ix.numLand
	ix.labelFrom = make([]uint8, n*R)
	ix.labelTo = make([]uint8, n*R)
	for i := range ix.labelFrom {
		ix.labelFrom[i] = NoEntry
		ix.labelTo[i] = NoEntry
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > R {
		parallelism = R
	}
	perLandmark := make([][]metaArc, R)
	overflow := false
	if parallelism <= 1 {
		ws := newDiLabelWS(n)
		for ri := 0; ri < R; ri++ {
			metas, ok := ix.landmarkBFS(ri, true, ws)
			if !ok {
				return ErrDiameterTooLarge
			}
			if _, ok := ix.landmarkBFS(ri, false, ws); !ok {
				return ErrDiameterTooLarge
			}
			perLandmark[ri] = metas
		}
	} else {
		var wg sync.WaitGroup
		var mu sync.Mutex
		work := make(chan int)
		for w := 0; w < parallelism; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := newDiLabelWS(n)
				for ri := range work {
					metas, ok := ix.landmarkBFS(ri, true, ws)
					if ok {
						_, ok = ix.landmarkBFS(ri, false, ws)
					}
					if !ok {
						mu.Lock()
						overflow = true
						mu.Unlock()
						continue
					}
					perLandmark[ri] = metas
				}
			}()
		}
		for ri := 0; ri < R; ri++ {
			work <- ri
		}
		close(work)
		wg.Wait()
		if overflow {
			return ErrDiameterTooLarge
		}
	}
	var all []metaArc
	for _, m := range perLandmark {
		all = append(all, m...)
	}
	ix.sigma = make([]uint8, R*R)
	ix.metaID = make([]int32, R*R)
	for i := range ix.sigma {
		ix.sigma[i] = NoEntry
		ix.metaID[i] = -1
	}
	for _, m := range all {
		at := m.a*R + m.b
		if ix.sigma[at] == NoEntry {
			ix.sigma[at] = uint8(m.weight)
			ix.metaID[at] = int32(len(ix.meta))
			ix.meta = append(ix.meta, m)
		}
	}
	return nil
}

func (ix *Index) buildAPSP() {
	R := ix.numLand
	ix.distM = make([]int32, R*R)
	for i := 0; i < R; i++ {
		for j := 0; j < R; j++ {
			switch {
			case i == j:
				ix.distM[i*R+j] = 0
			case ix.sigma[i*R+j] != NoEntry:
				ix.distM[i*R+j] = int32(ix.sigma[i*R+j])
			default:
				ix.distM[i*R+j] = graph.InfDist
			}
		}
	}
	for k := 0; k < R; k++ {
		for i := 0; i < R; i++ {
			dik := ix.distM[i*R+k]
			if dik == graph.InfDist {
				continue
			}
			for j := 0; j < R; j++ {
				if dkj := ix.distM[k*R+j]; dkj != graph.InfDist && dik+dkj < ix.distM[i*R+j] {
					ix.distM[i*R+j] = dik + dkj
				}
			}
		}
	}
}

// onMetaShortestPath reports whether directed meta-arc k lies on a
// shortest i→j meta-path.
func (ix *Index) onMetaShortestPath(i, j, k int) bool {
	R := ix.numLand
	m := ix.meta[k]
	d := ix.distM[i*R+j]
	if d == graph.InfDist {
		return false
	}
	da, db := ix.distM[i*R+m.a], ix.distM[m.b*R+j]
	return da != graph.InfDist && db != graph.InfDist && da+m.weight+db == d
}

// buildDelta recovers the directed SPG of every meta-arc from the two
// labellings: w lies on an avoiding shortest a→b path iff
// labelFrom[w][a] + labelTo[w][b] = σ(a→b); arcs connect consecutive
// labelFrom levels.
func (ix *Index) buildDelta() {
	g := ix.g
	R := ix.numLand
	n := g.NumVertices()
	ix.delta = make([][]graph.Arc, len(ix.meta))
	for k, m := range ix.meta {
		if m.weight == 1 {
			ix.delta[k] = []graph.Arc{{From: ix.landmarks[m.a], To: ix.landmarks[m.b]}}
		}
	}
	cands := make([][]graph.V, len(ix.meta))
	for v := 0; v < n; v++ {
		base := v * R
		for a := 0; a < R; a++ {
			la := ix.labelFrom[base+a]
			if la == NoEntry {
				continue
			}
			row := a * R
			for b := 0; b < R; b++ {
				lb := ix.labelTo[base+b]
				if lb == NoEntry {
					continue
				}
				id := ix.metaID[row+b]
				if id >= 0 && int32(la)+int32(lb) == ix.meta[id].weight {
					cands[id] = append(cands[id], graph.V(v))
				}
			}
		}
	}
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	for k, m := range ix.meta {
		if m.weight == 1 {
			continue
		}
		va, vb := ix.landmarks[m.a], ix.landmarks[m.b]
		for _, w := range cands[k] {
			level[w] = int32(ix.labelFrom[int(w)*R+m.a])
		}
		arcs := ix.delta[k]
		for _, w := range cands[k] {
			lw := level[w]
			if lw == 1 {
				arcs = append(arcs, graph.Arc{From: va, To: w})
			}
			if lw == m.weight-1 {
				arcs = append(arcs, graph.Arc{From: w, To: vb})
			}
			for _, x := range g.Out(w) {
				if level[x] == lw+1 {
					arcs = append(arcs, graph.Arc{From: w, To: x})
				}
			}
		}
		for _, w := range cands[k] {
			level[w] = -1
		}
		ix.delta[k] = arcs
	}
}
