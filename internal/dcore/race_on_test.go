//go:build race

package dcore

// raceEnabledDcore reports whether the race detector is active; timing
// assertions are skipped under it.
const raceEnabledDcore = true
