package dcore

import (
	"math/rand"
	"reflect"
	"testing"

	"qbs/internal/graph"
)

// TestParallelBuildBitIdentical is the directed counterpart of the core
// package's test: on digraphs big enough for the intra-sweep pool to
// engage, every worker count must reproduce the sequential labelling —
// both label directions, σ, the APSP table and the meta-arc list —
// exactly, including across the outer × inner budget split when the
// landmark set spans multiple 64-wide batches.
func TestParallelBuildBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-vertex builds")
	}
	for _, tc := range []struct {
		n, m, R int
		seed    int64
	}{
		{10000, 50000, 16, 1}, // one batch per direction
		{7000, 28000, 70, 2},  // two batches: outer × inner split
	} {
		rng := rand.New(rand.NewSource(tc.seed))
		b := graph.NewDiBuilder(tc.n)
		for v := 1; v < tc.n; v++ {
			b.AddArc(graph.V(rng.Intn(v)), graph.V(v)) // reachable spine
		}
		for i := 0; i < tc.m; i++ {
			u, v := rng.Intn(tc.n), rng.Intn(tc.n)
			if u != v {
				b.AddArc(graph.V(u), graph.V(v))
			}
		}
		g := b.MustBuild()

		var base *Index
		for _, par := range []int{1, 2, 4, 8} {
			ix, err := Build(g, Options{NumLandmarks: tc.R, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if par == 1 {
				base = ix
				continue
			}
			if !reflect.DeepEqual(ix.labelFrom, base.labelFrom) ||
				!reflect.DeepEqual(ix.labelTo, base.labelTo) {
				t.Fatalf("n=%d R=%d par=%d: labels differ from sequential", tc.n, tc.R, par)
			}
			if !reflect.DeepEqual(ix.sigma, base.sigma) {
				t.Fatalf("n=%d R=%d par=%d: sigma differs from sequential", tc.n, tc.R, par)
			}
			if !reflect.DeepEqual(ix.distM, base.distM) {
				t.Fatalf("n=%d R=%d par=%d: meta APSP differs from sequential", tc.n, tc.R, par)
			}
			if len(ix.meta) != len(base.meta) {
				t.Fatalf("n=%d R=%d par=%d: meta arc count differs", tc.n, tc.R, par)
			}
		}
	}
}
