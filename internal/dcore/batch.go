package dcore

import (
	"qbs/internal/graph"
	"qbs/internal/traverse"
)

// QueryBatchInto answers n directed queries concurrently into out
// (len n) with up to parallelism workers (0 = GOMAXPROCS). pairAt
// yields the i-th query pair; acquire/release manage per-worker
// searchers (typically a pool). Chunking, worker capping and panic
// isolation live in traverse.QueryBatch, shared with the undirected
// core copy.
func QueryBatchInto(out []*graph.DiSPG, parallelism int, pairAt func(int) (graph.V, graph.V), acquire func() *Searcher, release func(*Searcher)) {
	traverse.QueryBatch(out, parallelism, pairAt, acquire, release,
		func(sr *Searcher, dst *graph.DiSPG, u, v graph.V) { sr.QueryInto(dst, u, v) })
}
