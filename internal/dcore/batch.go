package dcore

import (
	"runtime"
	"sync"
	"sync/atomic"

	"qbs/internal/graph"
)

// batchChunk is the number of queries a batch worker claims at a time.
// Each chunk's results live in one DiSPG slab, so steady-state batches
// allocate once per chunk instead of once per query, and consecutive
// results stay cache-adjacent for the caller. Mirrors core.QueryBatchInto.
const batchChunk = 32

// QueryBatchInto answers n directed queries concurrently into out
// (len n) with up to parallelism workers (0 = GOMAXPROCS, capped at n).
// pairAt yields the i-th query pair; acquire/release manage per-worker
// searchers (typically a pool).
//
// A query that panics (e.g. an out-of-range vertex id) does not bring
// the batch down: its slot is left nil, the worker discards its
// possibly-corrupt searcher instead of releasing it and continues with
// a fresh one, and all remaining results are returned.
func QueryBatchInto(out []*graph.DiSPG, parallelism int, pairAt func(int) (graph.V, graph.V), acquire func() *Searcher, release func(*Searcher)) {
	n := len(out)
	if n == 0 {
		return
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	// Cap at the chunk count: a surplus worker would acquire a searcher
	// (possibly constructing one) only to find no chunk left.
	if chunks := (n + batchChunk - 1) / batchChunk; parallelism > chunks {
		parallelism = chunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sr := acquire()
			defer func() {
				if sr != nil {
					release(sr)
				}
			}()
			for {
				start := int(next.Add(batchChunk)) - batchChunk
				if start >= n {
					return
				}
				end := min(start+batchChunk, n)
				arena := make([]graph.DiSPG, end-start)
				for i := start; i < end; i++ {
					if sr == nil {
						sr = acquire()
					}
					u, v := pairAt(i)
					spg := &arena[i-start]
					if runQueryInto(sr, spg, u, v) {
						out[i] = spg
					} else {
						sr = nil // searcher state is suspect after a panic
					}
				}
			}
		}()
	}
	wg.Wait()
}

// runQueryInto answers one batch query, converting a panic into a false
// return so a poisoned query cannot deadlock or kill the whole batch.
func runQueryInto(sr *Searcher, dst *graph.DiSPG, u, v graph.V) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	sr.QueryInto(dst, u, v)
	return true
}
