package dcore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"qbs/internal/bfs"
	"qbs/internal/graph"
)

func testDigraphs() map[string]*graph.DiGraph {
	return map[string]*graph.DiGraph{
		"dipath": graph.MustDiFromArcs(6, []graph.Arc{
			{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4}, {From: 4, To: 5},
		}),
		"dicycle": graph.MustDiFromArcs(7, []graph.Arc{
			{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}, {From: 3, To: 4},
			{From: 4, To: 5}, {From: 5, To: 6}, {From: 6, To: 0},
		}),
		"diamond": graph.MustDiFromArcs(5, []graph.Arc{
			{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 3}, {From: 2, To: 3},
			{From: 3, To: 4}, {From: 4, To: 0}, // back arc
		}),
		"asym": graph.MustDiFromArcs(4, []graph.Arc{
			{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}, {From: 0, To: 3}, {From: 3, To: 2},
		}),
		"der300":  graph.DirectedErdosRenyi(300, 1200, 3),
		"der150":  graph.DirectedErdosRenyi(150, 450, 4),
		"dsf200":  graph.DirectedScaleFree(200, 2, 5),
		"dsf300":  graph.DirectedScaleFree(300, 3, 6),
		"undirBA": graph.AsDirected(largestComponent(graph.BarabasiAlbert(200, 3, 7))),
	}
}

func largestComponent(g *graph.Graph) *graph.Graph {
	lc, _ := g.LargestComponent()
	return lc
}

func checkDiQueries(t *testing.T, g *graph.DiGraph, ix *Index, pairs [][2]graph.V) {
	t.Helper()
	sr := NewSearcher(ix)
	for _, p := range pairs {
		u, v := p[0], p[1]
		got := sr.Query(u, v)
		want := bfs.OracleDiSPG(g, u, v)
		if !got.Equal(want) {
			t.Fatalf("DiSPG(%d,%d): got %v\nwant %v (landmarks %v)", u, v, got, want, ix.Landmarks())
		}
		if err := got.Verify(g, bfs.DiDistancesFrom(g, u), bfs.DiDistancesTo(g, v)); err != nil {
			t.Fatalf("DiSPG(%d,%d): %v", u, v, err)
		}
	}
}

func TestDirectedQueryMatchesOracle(t *testing.T) {
	for name, g := range testDigraphs() {
		for _, k := range []int{1, 3, 8, 20} {
			if k > g.NumVertices() {
				continue
			}
			t.Run(fmt.Sprintf("%s/R=%d", name, k), func(t *testing.T) {
				ix := MustBuild(g, Options{NumLandmarks: k})
				var pairs [][2]graph.V
				n := g.NumVertices()
				if n <= 10 {
					for u := 0; u < n; u++ {
						for v := 0; v < n; v++ {
							pairs = append(pairs, [2]graph.V{graph.V(u), graph.V(v)})
						}
					}
				} else {
					rng := rand.New(rand.NewSource(int64(k)))
					for i := 0; i < 120; i++ {
						pairs = append(pairs, [2]graph.V{graph.V(rng.Intn(n)), graph.V(rng.Intn(n))})
					}
				}
				checkDiQueries(t, g, ix, pairs)
			})
		}
	}
}

func TestDirectedLandmarkEndpoints(t *testing.T) {
	g := graph.DirectedScaleFree(150, 2, 9)
	ix := MustBuild(g, Options{NumLandmarks: 6})
	rng := rand.New(rand.NewSource(2))
	var pairs [][2]graph.V
	for _, r := range ix.Landmarks() {
		pairs = append(pairs,
			[2]graph.V{r, graph.V(rng.Intn(g.NumVertices()))},
			[2]graph.V{graph.V(rng.Intn(g.NumVertices())), r},
			[2]graph.V{r, ix.Landmarks()[rng.Intn(len(ix.Landmarks()))]},
		)
	}
	checkDiQueries(t, g, ix, pairs)
}

func TestDirectedAsymmetry(t *testing.T) {
	// d(u,v) may differ from d(v,u); both directions must be exact.
	g := testDigraphs()["asym"]
	ix := MustBuild(g, Options{NumLandmarks: 2})
	sr := NewSearcher(ix)
	ab := sr.Query(1, 3)
	ba := sr.Query(3, 1)
	wantAB := bfs.OracleDiSPG(g, 1, 3)
	wantBA := bfs.OracleDiSPG(g, 3, 1)
	if !ab.Equal(wantAB) || !ba.Equal(wantBA) {
		t.Fatalf("asymmetric answers wrong: %v / %v", ab, ba)
	}
	if ab.Dist == ba.Dist {
		t.Log("note: this fixture happens to be symmetric for the pair; acceptable")
	}
}

func TestDirectedMatchesUndirectedOnSymmetricGraphs(t *testing.T) {
	// On a symmetrised graph, the directed SPG's arc set must be exactly
	// the undirected SPG's edges in both orientations along the DAG.
	ug := largestComponent(graph.BarabasiAlbert(150, 3, 11))
	dg := graph.AsDirected(ug)
	ix := MustBuild(dg, Options{NumLandmarks: 8})
	sr := NewSearcher(ix)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 60; i++ {
		u := graph.V(rng.Intn(ug.NumVertices()))
		v := graph.V(rng.Intn(ug.NumVertices()))
		di := sr.Query(u, v)
		un := bfs.OracleSPG(ug, u, v)
		if di.Dist != un.Dist {
			t.Fatalf("distance mismatch for (%d,%d): %d vs %d", u, v, di.Dist, un.Dist)
		}
		if di.Dist == graph.InfDist || u == v {
			continue
		}
		// Each undirected SPG edge appears exactly once as a directed arc
		// oriented away from u.
		if di.NumArcs() != un.NumEdges() {
			t.Fatalf("(%d,%d): %d arcs vs %d edges", u, v, di.NumArcs(), un.NumEdges())
		}
		for _, a := range di.Arcs() {
			if !ug.HasEdge(a.From, a.To) {
				t.Fatalf("(%d,%d): arc %v not an undirected edge", u, v, a)
			}
		}
	}
}

func TestDirectedDisconnectedAndTrivial(t *testing.T) {
	g := graph.MustDiFromArcs(4, []graph.Arc{{From: 0, To: 1}, {From: 2, To: 3}})
	ix := MustBuild(g, Options{NumLandmarks: 2})
	sr := NewSearcher(ix)
	if s := sr.Query(0, 3); s.Dist != graph.InfDist || s.NumArcs() != 0 {
		t.Fatalf("disconnected: %v", s)
	}
	if s := sr.Query(1, 0); s.Dist != graph.InfDist {
		t.Fatalf("one-way arc reversed must be unreachable: %v", s)
	}
	if s := sr.Query(2, 2); s.Dist != 0 || s.NumArcs() != 0 {
		t.Fatalf("trivial: %v", s)
	}
}

func TestDirectedLabelDefinitions(t *testing.T) {
	// labelFrom[v][r] = d(r→v) iff some shortest r→v path avoids other
	// landmarks; symmetric for labelTo with v→r.
	g := graph.DirectedScaleFree(120, 2, 17)
	ix := MustBuild(g, Options{NumLandmarks: 5})
	R := ix.numLand
	for i, r := range ix.Landmarks() {
		from := bfs.DiDistancesFrom(g, r)
		to := bfs.DiDistancesTo(g, r)
		avoidFrom := avoidanceDistances(g, ix, r, true)
		avoidTo := avoidanceDistances(g, ix, r, false)
		for v := 0; v < g.NumVertices(); v++ {
			if ix.IsLandmark(graph.V(v)) {
				continue
			}
			gotF := ix.labelFrom[v*R+i]
			wantF := from[v] != bfs.Infinity && avoidFrom[v] == from[v]
			if (gotF != NoEntry) != wantF {
				t.Fatalf("labelFrom[%d][%d]: present=%v want %v", v, r, gotF != NoEntry, wantF)
			}
			if gotF != NoEntry && int32(gotF) != from[v] {
				t.Fatalf("labelFrom[%d][%d] = %d want %d", v, r, gotF, from[v])
			}
			gotT := ix.labelTo[v*R+i]
			wantT := to[v] != bfs.Infinity && avoidTo[v] == to[v]
			if (gotT != NoEntry) != wantT {
				t.Fatalf("labelTo[%d][%d]: present=%v want %v", v, r, gotT != NoEntry, wantT)
			}
			if gotT != NoEntry && int32(gotT) != to[v] {
				t.Fatalf("labelTo[%d][%d] = %d want %d", v, r, gotT, to[v])
			}
		}
	}
}

// avoidanceDistances computes directed distances from/to r in the graph
// with other landmarks removed.
func avoidanceDistances(g *graph.DiGraph, ix *Index, r graph.V, forward bool) []int32 {
	b := graph.NewDiBuilder(g.NumVertices())
	for u := graph.V(0); u < graph.V(g.NumVertices()); u++ {
		if ix.IsLandmark(u) && u != r {
			continue
		}
		for _, w := range g.Out(u) {
			if ix.IsLandmark(w) && w != r {
				continue
			}
			b.AddArc(u, w)
		}
	}
	sub := b.MustBuild()
	if forward {
		return bfs.DiDistancesFrom(sub, r)
	}
	return bfs.DiDistancesTo(sub, r)
}

func TestDirectedParallelDeterminism(t *testing.T) {
	g := graph.DirectedScaleFree(300, 3, 19)
	seq := MustBuild(g, Options{NumLandmarks: 12, Parallelism: 1})
	par := MustBuild(g, Options{NumLandmarks: 12, Parallelism: 8})
	for i := range seq.labelFrom {
		if seq.labelFrom[i] != par.labelFrom[i] || seq.labelTo[i] != par.labelTo[i] {
			t.Fatal("parallel directed labelling differs from sequential")
		}
	}
}

func TestDirectedQuickProperty(t *testing.T) {
	check := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		n := 8 + int(nRaw)%60
		m := n + int(mRaw)%(4*n)
		k := 1 + int(kRaw)%8
		g := graph.DirectedErdosRenyi(n, m, seed)
		if k > n {
			k = n
		}
		ix, err := Build(g, Options{NumLandmarks: k})
		if err != nil {
			return false
		}
		sr := NewSearcher(ix)
		rng := rand.New(rand.NewSource(seed ^ 0xd1))
		for i := 0; i < 10; i++ {
			u := graph.V(rng.Intn(n))
			v := graph.V(rng.Intn(n))
			if !sr.Query(u, v).Equal(bfs.OracleDiSPG(g, u, v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDiBidirectionalMatchesOracle(t *testing.T) {
	for name, g := range testDigraphs() {
		b := bfs.NewDiBidirectional(g)
		rng := rand.New(rand.NewSource(23))
		n := g.NumVertices()
		for i := 0; i < 80; i++ {
			u := graph.V(rng.Intn(n))
			v := graph.V(rng.Intn(n))
			got, _ := b.Query(u, v)
			want := bfs.OracleDiSPG(g, u, v)
			if !got.Equal(want) {
				t.Fatalf("%s: DiBiBFS(%d,%d) = %v, want %v", name, u, v, got, want)
			}
		}
	}
}

// TestEngineMatchesScalarReference pins the bit-parallel labelling
// bit-identical to the scalar per-landmark reference: both label
// matrices, σ, the canonical meta-arc list and every Δ list must agree
// byte for byte, across graph shapes and landmark counts — including
// multi-batch builds beyond the 64-way sweep width.
func TestEngineMatchesScalarReference(t *testing.T) {
	graphs := testDigraphs()
	graphs["der400"] = graph.DirectedErdosRenyi(400, 2400, 29)
	for name, g := range graphs {
		for _, k := range []int{1, 3, 20, 80, 130} {
			if k > g.NumVertices() {
				continue
			}
			t.Run(fmt.Sprintf("%s/R=%d", name, k), func(t *testing.T) {
				eng := MustBuild(g, Options{NumLandmarks: k})
				ref := MustBuild(g, Options{NumLandmarks: k, Scalar: true})
				for i := range eng.labelFrom {
					if eng.labelFrom[i] != ref.labelFrom[i] {
						t.Fatalf("labelFrom diverges at %d: engine %d, scalar %d", i, eng.labelFrom[i], ref.labelFrom[i])
					}
					if eng.labelTo[i] != ref.labelTo[i] {
						t.Fatalf("labelTo diverges at %d: engine %d, scalar %d", i, eng.labelTo[i], ref.labelTo[i])
					}
				}
				for i := range eng.sigma {
					if eng.sigma[i] != ref.sigma[i] {
						t.Fatalf("sigma diverges at %d: engine %d, scalar %d", i, eng.sigma[i], ref.sigma[i])
					}
					if eng.metaID[i] != ref.metaID[i] {
						t.Fatalf("metaID diverges at %d", i)
					}
				}
				if len(eng.meta) != len(ref.meta) {
					t.Fatalf("meta arcs: engine %d, scalar %d", len(eng.meta), len(ref.meta))
				}
				for k := range eng.meta {
					if eng.meta[k] != ref.meta[k] {
						t.Fatalf("meta[%d]: engine %+v, scalar %+v", k, eng.meta[k], ref.meta[k])
					}
					if len(eng.delta[k]) != len(ref.delta[k]) {
						t.Fatalf("delta[%d]: engine %d arcs, scalar %d", k, len(eng.delta[k]), len(ref.delta[k]))
					}
					for i := range eng.delta[k] {
						if eng.delta[k][i] != ref.delta[k][i] {
							t.Fatalf("delta[%d][%d] diverges", k, i)
						}
					}
				}
				if eng.build.LabelEntries != ref.build.LabelEntries {
					t.Fatalf("label entries: engine %d, scalar %d", eng.build.LabelEntries, ref.build.LabelEntries)
				}
			})
		}
	}
}

// TestEngineDepthOverflowMatchesScalar pins the two paths' failure
// behaviour: both must reject a >254-hop labelling distance.
func TestEngineDepthOverflowMatchesScalar(t *testing.T) {
	b := graph.NewDiBuilder(300)
	for i := 0; i < 299; i++ {
		b.AddArc(graph.V(i), graph.V(i+1))
	}
	g := b.MustBuild()
	if _, err := Build(g, Options{Landmarks: []graph.V{0}}); err != ErrDiameterTooLarge {
		t.Fatalf("engine: err = %v, want ErrDiameterTooLarge", err)
	}
	if _, err := Build(g, Options{Landmarks: []graph.V{0}, Scalar: true}); err != ErrDiameterTooLarge {
		t.Fatalf("scalar: err = %v, want ErrDiameterTooLarge", err)
	}
}

// TestDirectedQueryIntoAndDistance covers the reusable-result entry
// points against the oracle and the extracting query.
func TestDirectedQueryIntoAndDistance(t *testing.T) {
	g := graph.DirectedScaleFree(300, 3, 31)
	ix := MustBuild(g, Options{NumLandmarks: 12})
	sr := NewSearcher(ix)
	spg := graph.NewDiSPG(0, 0)
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 150; i++ {
		u := graph.V(rng.Intn(g.NumVertices()))
		v := graph.V(rng.Intn(g.NumVertices()))
		want := bfs.OracleDiSPG(g, u, v)
		sr.QueryInto(spg, u, v)
		if !spg.Equal(want) {
			t.Fatalf("QueryInto(%d,%d) != oracle", u, v)
		}
		if d := sr.Distance(u, v); d != want.Dist {
			t.Fatalf("Distance(%d,%d) = %d, want %d", u, v, d, want.Dist)
		}
	}
}

// TestDirectedRestoreRoundTrip pins Persistent/Restore: an index
// reassembled from its own frozen state answers bit-identically.
func TestDirectedRestoreRoundTrip(t *testing.T) {
	g := graph.DirectedScaleFree(250, 3, 43)
	ix := MustBuild(g, Options{NumLandmarks: 10})
	ps := ix.Persistent()
	re, err := Restore(ps.Graph, ps.Landmarks, ps.LabelFrom, ps.LabelTo, ps.Sigma, ps.Delta)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ix.distM {
		if ix.distM[i] != re.distM[i] {
			t.Fatalf("restored APSP diverges at %d", i)
		}
	}
	sa, sb := NewSearcher(ix), NewSearcher(re)
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 100; i++ {
		u := graph.V(rng.Intn(g.NumVertices()))
		v := graph.V(rng.Intn(g.NumVertices()))
		if !sa.Query(u, v).Equal(sb.Query(u, v)) {
			t.Fatalf("restored index answers (%d,%d) differently", u, v)
		}
	}
}

// TestDirectedEngineBuildSpeedup is the PR 4 acceptance criterion: the
// bit-parallel labelling must construct at least 2× faster than the
// scalar reference on the bench graph. Skipped under the race detector
// and -short (instrumented timings are not representative).
func TestDirectedEngineBuildSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabledDcore {
		t.Skip("timing test under race instrumentation")
	}
	g := graph.DirectedScaleFree(30000, 6, 53)
	landmarks := g.TotalDegreeOrder()[:32]
	best := func(scalar bool) time.Duration {
		b := time.Duration(1<<63 - 1)
		for rep := 0; rep < 3; rep++ {
			ix := MustBuild(g, Options{Landmarks: landmarks, Scalar: scalar, Parallelism: 1})
			if d := ix.Stats().LabellingTime; d < b {
				b = d
			}
		}
		return b
	}
	engine, scalar := best(false), best(true)
	if ratio := float64(scalar) / float64(engine); ratio < 2 {
		t.Fatalf("bit-parallel labelling only %.2fx faster than scalar (engine %s, scalar %s), want >= 2x",
			ratio, engine, scalar)
	}
}
