package dcore

import (
	"time"

	"qbs/internal/bfs"
	"qbs/internal/graph"
	"qbs/internal/traverse"
)

// Directed guided search: forward BFS from u over out-arcs and backward
// BFS from v over in-arcs on the landmark-sparsified digraph, bounded by
// the directed sketch; then directed reverse and recover stages combined
// per Eq. 5. Each side expands through a direction-optimizing
// traverse.Expander (top-down while sparse, bottom-up through dense
// levels) exactly like the undirected searcher; landmarks carry a
// sentinel stamp so both directions skip them with one Seen check.

// Searcher answers directed queries against a fixed Index. Not safe for
// concurrent use; create one per goroutine (they share the immutable
// Index).
type Searcher struct {
	ix         *Index
	g          *graph.DiGraph
	gOut, gIn  graph.Adjacency // pre-converted views (no per-query boxing)
	fwd, bwd   diSide
	ext        *bfs.DiExtractor
	walkMark   *bfs.Workspace
	distSPG    *graph.DiSPG // scratch result for Distance (never escapes)
	entU, entV []sketchEntry
	pairs      []pair
	sigmaU     []int32
	sigmaV     []int32
	ranksU     []int
	ranksV     []int
	metaGen    []uint32
	metaCur    uint32
	walkCur    []graph.V
	walkNext   []graph.V
	starts     []graph.V
	meet       []graph.V
}

type sketchEntry struct {
	rank  int
	sigma int32
}

type pair struct{ r, rp int }

// diSide is one direction of the bidirectional search: an epoch-stamped
// depth map, a direction-optimizing expander and an arena of visited
// vertices grouped into levels.
type diSide struct {
	ws       *bfs.Workspace
	exp      *traverse.Expander
	arena    []graph.V
	levelOff []int32
	d        int32
}

func (s *diSide) reset(t graph.V) {
	s.ws.Reset()
	s.ws.SetDist(t, 0)
	s.arena = append(s.arena[:0], t)
	s.levelOff = append(s.levelOff[:0], 0, 1)
	s.d = 0
}

func (s *diSide) level(i int32) []graph.V { return s.arena[s.levelOff[i]:s.levelOff[i+1]] }
func (s *diSide) frontier() []graph.V     { return s.level(s.d) }
func (s *diSide) visited() int            { return len(s.arena) }

// NewSearcher creates a query workspace for ix.
func NewSearcher(ix *Index) *Searcher {
	n := ix.g.NumVertices()
	R := ix.numLand
	sr := &Searcher{
		ix:       ix,
		g:        ix.g,
		gOut:     ix.g.OutView(),
		gIn:      ix.g.InView(),
		ext:      bfs.NewDiExtractor(n),
		walkMark: bfs.NewWorkspace(n),
		distSPG:  graph.NewDiSPG(0, 0),
		sigmaU:   make([]int32, R),
		sigmaV:   make([]int32, R),
		metaGen:  make([]uint32, len(ix.meta)),
	}
	sr.fwd.ws = bfs.NewWorkspace(n)
	sr.bwd.ws = bfs.NewWorkspace(n)
	sr.fwd.exp = traverse.NewExpander(n)
	sr.bwd.exp = traverse.NewExpander(n)
	for i := 0; i < R; i++ {
		sr.sigmaU[i] = -1
		sr.sigmaV[i] = -1
	}
	return sr
}

// SetParallelism runs this searcher's guided expansions on p traverse
// pool workers when a level is large enough to pay for the fan-out;
// query results are bit-identical at every setting. 0 (the default)
// stays sequential — the right call for servers answering many queries
// concurrently.
func (sr *Searcher) SetParallelism(p int) {
	sr.fwd.exp.Parallelism = p
	sr.bwd.exp.Parallelism = p
}

// QueryStats reports directed per-query internals. Filled as an
// out-param on the warm path: plain fields, no allocation.
type QueryStats struct {
	Dist int32 // d_G(u → v); graph.InfDist if unreachable
	DTop int32 // the directed sketch bound d⊤

	// Engine counters surfaced from the traversal machinery.
	LabelEntries     int64 // label entries of u and v scanned by the sketch
	FrontierWords    int64 // visited-bitmap words swept by bottom-up expansion
	PushPullSwitches int64 // top-down ↔ bottom-up direction switches
	ParallelLevels   int64 // expansion levels run on the worker pool
	ParallelChunks   int64 // frontier chunks claimed by pool workers
	ParallelSteals   int64 // chunks claimed outside a worker's static share

	// Stage spans (monotonic-clock nanoseconds).
	SketchNs  int64
	ExpandNs  int64
	ExtractNs int64
}

// Query answers the directed SPG(u → v).
func (sr *Searcher) Query(u, v graph.V) *graph.DiSPG {
	spg := graph.NewDiSPG(u, v)
	sr.query(spg, u, v, true)
	return spg
}

// QueryWithStats answers SPG(u → v) and reports query internals —
// notably d⊤, which the serving layer would otherwise recompute with a
// second sketch pass.
func (sr *Searcher) QueryWithStats(u, v graph.V) (*graph.DiSPG, QueryStats) {
	spg := graph.NewDiSPG(u, v)
	st := sr.query(spg, u, v, true)
	return spg, st
}

// QueryInto answers SPG(u → v) into a caller-owned result, resetting it
// first. Reusing one DiSPG across queries keeps the warm query path free
// of heap allocations (the arc buffer is recycled at its high-water
// mark).
//
//qbs:zeroalloc
func (sr *Searcher) QueryInto(spg *graph.DiSPG, u, v graph.V) {
	spg.Reset(u, v)
	sr.query(spg, u, v, true)
}

// Distance returns d_G(u → v) using the same sketch-guided machinery but
// skipping path extraction. It does not allocate on the warm path.
func (sr *Searcher) Distance(u, v graph.V) int32 {
	sr.distSPG.Reset(u, v)
	return sr.query(sr.distSPG, u, v, false).Dist
}

func (sr *Searcher) query(spg *graph.DiSPG, u, v graph.V, extract bool) QueryStats {
	ix := sr.ix
	g := sr.g
	var st QueryStats
	if u == v {
		spg.Dist = 0
		return st
	}

	t0 := time.Now()
	dTop, dStarU, dStarV := sr.computeSketch(u, v)
	defer sr.releaseSketch()
	st.DTop = dTop
	st.LabelEntries = int64(len(sr.entU) + len(sr.entV))
	t1 := time.Now()
	st.SketchNs = t1.Sub(t0).Nanoseconds()

	uLand := ix.landIdx[u] >= 0
	vLand := ix.landIdx[v] >= 0
	sr.fwd.reset(u)
	sr.bwd.reset(v)
	var meet []graph.V
	dGMinus := graph.InfDist
	if !uLand && !vLand {
		sr.fwd.exp.BeginDirected(sr.gOut, sr.gIn, ix.degsOut)
		sr.bwd.exp.BeginDirected(sr.gIn, sr.gOut, ix.degsIn)
		// Pre-stamp landmarks with a sentinel depth so the expansion loop
		// skips them with a single stamp check — the implicit G⁻ = G[V\R],
		// honoured identically by top-down and bottom-up expansion.
		for _, r := range ix.landmarks {
			sr.fwd.ws.SetDist(r, -1)
			sr.bwd.ws.SetDist(r, -1)
		}
		meet = sr.bidirectional(dTop, dStarU, dStarV)
		st.FrontierWords = sr.fwd.exp.WordsSwept + sr.bwd.exp.WordsSwept
		st.PushPullSwitches = sr.fwd.exp.Switches + sr.bwd.exp.Switches
		st.ParallelLevels = sr.fwd.exp.ParallelLevels + sr.bwd.exp.ParallelLevels
		st.ParallelChunks = sr.fwd.exp.ParallelChunks + sr.bwd.exp.ParallelChunks
		st.ParallelSteals = sr.fwd.exp.ParallelSteals + sr.bwd.exp.ParallelSteals
		if len(meet) > 0 {
			dGMinus = sr.fwd.d + sr.bwd.d
		}
	}
	t2 := time.Now()
	st.ExpandNs = t2.Sub(t1).Nanoseconds()

	dist := dTop
	if dGMinus < dist {
		dist = dGMinus
	}
	spg.Dist = dist
	st.Dist = dist
	if dist == graph.InfDist {
		return st
	}

	if extract {
		if dGMinus == dist && len(meet) > 0 {
			cut := meet[:0]
			for _, w := range meet {
				if sr.fwd.ws.Dist(w)+sr.bwd.ws.Dist(w) == dist {
					cut = append(cut, w)
				}
			}
			sr.ext.Extract(g, spg, cut, sr.fwd.ws, true)
			sr.ext.Extract(g, spg, cut, sr.bwd.ws, false)
		}
		if dTop == dist {
			sr.recover(spg, uLand, vLand)
		}
	}
	st.ExtractNs = time.Since(t2).Nanoseconds()
	return st
}

func (sr *Searcher) computeSketch(u, v graph.V) (dTop, dStarU, dStarV int32) {
	ix := sr.ix
	R := ix.numLand
	sr.entU = sr.entU[:0]
	sr.entV = sr.entV[:0]
	if ri := ix.landIdx[u]; ri >= 0 {
		sr.entU = append(sr.entU, sketchEntry{rank: int(ri)})
	} else {
		base := int(u) * R
		for i := 0; i < R; i++ {
			if d := ix.labelTo[base+i]; d != NoEntry {
				sr.entU = append(sr.entU, sketchEntry{rank: i, sigma: int32(d)})
			}
		}
	}
	if ri := ix.landIdx[v]; ri >= 0 {
		sr.entV = append(sr.entV, sketchEntry{rank: int(ri)})
	} else {
		base := int(v) * R
		for i := 0; i < R; i++ {
			if d := ix.labelFrom[base+i]; d != NoEntry {
				sr.entV = append(sr.entV, sketchEntry{rank: i, sigma: int32(d)})
			}
		}
	}
	sr.pairs = sr.pairs[:0]
	dTop = graph.InfDist
	for _, eu := range sr.entU {
		row := eu.rank * R
		for _, ev := range sr.entV {
			dm := ix.distM[row+ev.rank]
			if dm == graph.InfDist {
				continue
			}
			if pi := eu.sigma + dm + ev.sigma; pi < dTop {
				dTop = pi
			}
		}
	}
	if dTop == graph.InfDist {
		return dTop, 0, 0
	}
	for _, eu := range sr.entU {
		row := eu.rank * R
		for _, ev := range sr.entV {
			dm := ix.distM[row+ev.rank]
			if dm == graph.InfDist || eu.sigma+dm+ev.sigma != dTop {
				continue
			}
			sr.pairs = append(sr.pairs, pair{r: eu.rank, rp: ev.rank})
			if sr.sigmaU[eu.rank] < 0 {
				sr.sigmaU[eu.rank] = eu.sigma
				sr.ranksU = append(sr.ranksU, eu.rank)
				if eu.sigma-1 > dStarU {
					dStarU = eu.sigma - 1
				}
			}
			if sr.sigmaV[ev.rank] < 0 {
				sr.sigmaV[ev.rank] = ev.sigma
				sr.ranksV = append(sr.ranksV, ev.rank)
				if ev.sigma-1 > dStarV {
					dStarV = ev.sigma - 1
				}
			}
		}
	}
	return dTop, dStarU, dStarV
}

func (sr *Searcher) releaseSketch() {
	for _, r := range sr.ranksU {
		sr.sigmaU[r] = -1
	}
	for _, r := range sr.ranksV {
		sr.sigmaV[r] = -1
	}
	sr.ranksU = sr.ranksU[:0]
	sr.ranksV = sr.ranksV[:0]
}

func (sr *Searcher) bidirectional(dTop, dStarU, dStarV int32) []graph.V {
	meet := sr.meet[:0]
	defer func() { sr.meet = meet[:0] }()
	for dTop == graph.InfDist || sr.fwd.d+sr.bwd.d < dTop {
		uWant := dStarU > sr.fwd.d && len(sr.fwd.frontier()) > 0
		vWant := dStarV > sr.bwd.d && len(sr.bwd.frontier()) > 0
		var side, other *diSide
		switch {
		case uWant && !vWant:
			side, other = &sr.fwd, &sr.bwd
		case vWant && !uWant:
			side, other = &sr.bwd, &sr.fwd
		case sr.fwd.visited() <= sr.bwd.visited():
			side, other = &sr.fwd, &sr.bwd
		default:
			side, other = &sr.bwd, &sr.fwd
		}
		if len(side.frontier()) == 0 {
			side, other = other, side
			if len(side.frontier()) == 0 {
				return nil
			}
		}
		sr.expand(side)
		for _, w := range side.frontier() {
			if other.ws.Seen(w) {
				meet = append(meet, w)
			}
		}
		if len(meet) > 0 {
			return meet
		}
	}
	return nil
}

// expand grows side by one level over G⁻ through its
// direction-optimizing expander (the forward side is bound to the
// out-view, the backward side to the in-view, at query setup).
func (sr *Searcher) expand(side *diSide) {
	side.arena, _ = side.exp.Expand(side.ws, side.frontier(), side.d, side.arena)
	side.levelOff = append(side.levelOff, int32(len(side.arena)))
	side.d++
}

// recover reassembles the through-landmark directed paths.
func (sr *Searcher) recover(spg *graph.DiSPG, uLand, vLand bool) {
	ix := sr.ix
	g := sr.g
	R := ix.numLand

	if !uLand {
		for _, rank := range sr.ranksU {
			sigma := sr.sigmaU[rank]
			if sigma < 1 {
				continue
			}
			dm := sigma - 1
			if sr.fwd.d < dm {
				dm = sr.fwd.d
			}
			want := uint8(sigma - dm)
			starts := sr.starts[:0]
			for _, w := range sr.fwd.level(dm) {
				if ix.labelTo[int(w)*R+rank] == want {
					starts = append(starts, w)
				}
			}
			sr.starts = starts
			if len(starts) == 0 {
				continue
			}
			sr.ext.Extract(g, spg, starts, sr.fwd.ws, true)
			sr.labelWalkTo(spg, starts, rank, int32(want))
		}
	}
	if !vLand {
		for _, rank := range sr.ranksV {
			sigma := sr.sigmaV[rank]
			if sigma < 1 {
				continue
			}
			dm := sigma - 1
			if sr.bwd.d < dm {
				dm = sr.bwd.d
			}
			want := uint8(sigma - dm)
			starts := sr.starts[:0]
			for _, w := range sr.bwd.level(dm) {
				if ix.labelFrom[int(w)*R+rank] == want {
					starts = append(starts, w)
				}
			}
			sr.starts = starts
			if len(starts) == 0 {
				continue
			}
			sr.ext.Extract(g, spg, starts, sr.bwd.ws, false)
			sr.labelWalkFrom(spg, starts, rank, int32(want))
		}
	}

	sr.metaCur++
	for _, p := range sr.pairs {
		if p.r == p.rp {
			continue
		}
		for k := range ix.meta {
			if sr.metaGen[k] == sr.metaCur {
				continue
			}
			if ix.onMetaShortestPath(p.r, p.rp, k) {
				sr.metaGen[k] = sr.metaCur
				for _, a := range ix.delta[k] {
					spg.AddArc(a.From, a.To)
				}
			}
		}
	}
}

// labelWalkTo emits all avoiding shortest paths from each start vertex
// *to* landmark rank, walking out-arcs with labelTo decreasing.
func (sr *Searcher) labelWalkTo(spg *graph.DiSPG, starts []graph.V, rank int, delta int32) {
	ix := sr.ix
	g := sr.g
	R := ix.numLand
	rv := ix.landmarks[rank]
	sr.walkMark.Reset()
	cur := sr.walkCur[:0]
	for _, w := range starts {
		if !sr.walkMark.Seen(w) {
			sr.walkMark.SetDist(w, 0)
			cur = append(cur, w)
		}
	}
	for ; delta > 1; delta-- {
		next := sr.walkNext[:0]
		want := uint8(delta - 1)
		for _, x := range cur {
			for _, y := range g.Out(x) {
				if ix.landIdx[y] >= 0 {
					continue
				}
				if ix.labelTo[int(y)*R+rank] == want {
					spg.AddArc(x, y)
					if !sr.walkMark.Seen(y) {
						sr.walkMark.SetDist(y, 0)
						next = append(next, y)
					}
				}
			}
		}
		sr.walkNext = cur[:0]
		cur = next
	}
	for _, x := range cur {
		spg.AddArc(x, rv)
	}
	sr.walkCur = cur[:0]
}

// labelWalkFrom emits all avoiding shortest paths *from* landmark rank
// to each start vertex, walking in-arcs with labelFrom decreasing.
func (sr *Searcher) labelWalkFrom(spg *graph.DiSPG, starts []graph.V, rank int, delta int32) {
	ix := sr.ix
	g := sr.g
	R := ix.numLand
	rv := ix.landmarks[rank]
	sr.walkMark.Reset()
	cur := sr.walkCur[:0]
	for _, w := range starts {
		if !sr.walkMark.Seen(w) {
			sr.walkMark.SetDist(w, 0)
			cur = append(cur, w)
		}
	}
	for ; delta > 1; delta-- {
		next := sr.walkNext[:0]
		want := uint8(delta - 1)
		for _, x := range cur {
			for _, y := range g.In(x) {
				if ix.landIdx[y] >= 0 {
					continue
				}
				if ix.labelFrom[int(y)*R+rank] == want {
					spg.AddArc(y, x)
					if !sr.walkMark.Seen(y) {
						sr.walkMark.SetDist(y, 0)
						next = append(next, y)
					}
				}
			}
		}
		sr.walkNext = cur[:0]
		cur = next
	}
	for _, x := range cur {
		spg.AddArc(rv, x)
	}
	sr.walkCur = cur[:0]
}
