// Package dynamic adds live updates to the QbS index: an overlay graph
// that absorbs edge insertions and deletions without rebuilding the CSR,
// incremental repair of the landmark labelling after each update, and
// epoch-based snapshots so readers answer queries lock-free against an
// immutable view while writers advance the state.
//
// The design leans on two observations. First, QbS labels are just |R|
// landmark-rooted BFS layerings, so a single edge update perturbs them
// only around the changed edge: an insertion can only decrease distances
// (repaired by a decrease-only BFS from the endpoints), and a deletion
// invalidates exactly the vertices whose every shortest-path parent is
// invalidated (repaired by affected-vertex detection plus a bounded
// re-BFS). Second, the searcher only needs neighbour iteration, so the
// graph can be an immutable CSR base plus per-vertex adjacency deltas —
// mutated vertices get a private merged list, untouched vertices read
// straight from the base.
package dynamic

import (
	"sort"

	"qbs/internal/graph"
)

// Overlay is an immutable view of a mutable graph: a CSR base plus
// copy-on-write per-vertex adjacency overrides. WithEdge/WithoutEdge
// return a new Overlay sharing all untouched state with the receiver, so
// readers holding an old Overlay never observe a mutation.
//
// Overlay implements graph.Adjacency.
type Overlay struct {
	base    *graph.Graph
	touched []uint64 // bit v => over[v] overrides base adjacency
	over    map[graph.V][]graph.V
	edges   int // undirected edge count of the overlaid graph
}

// NewOverlay wraps a CSR base with an empty delta.
func NewOverlay(base *graph.Graph) *Overlay {
	return &Overlay{
		base:    base,
		touched: make([]uint64, (base.NumVertices()+63)/64),
		over:    map[graph.V][]graph.V{},
		edges:   base.NumEdges(),
	}
}

// Base returns the underlying CSR graph.
func (o *Overlay) Base() *graph.Graph { return o.base }

// NumVertices returns |V| (fixed: the overlay does not add vertices).
func (o *Overlay) NumVertices() int { return o.base.NumVertices() }

// NumEdges returns the current undirected edge count.
func (o *Overlay) NumEdges() int { return o.edges }

// NumArcs returns 2·|E|.
func (o *Overlay) NumArcs() int { return 2 * o.edges }

// Overridden returns the number of vertices whose adjacency diverged
// from the base — the compaction-pressure signal.
func (o *Overlay) Overridden() int { return len(o.over) }

func (o *Overlay) isTouched(v graph.V) bool {
	return o.touched[v>>6]&(1<<(uint(v)&63)) != 0
}

// Neighbors returns the sorted neighbour list of v. The hot path pays
// one bitmap probe over the base CSR lookup.
func (o *Overlay) Neighbors(v graph.V) []graph.V {
	if o.isTouched(v) {
		return o.over[v]
	}
	return o.base.Neighbors(v)
}

// Degree returns the number of neighbours of v.
func (o *Overlay) Degree(v graph.V) int { return len(o.Neighbors(v)) }

// HasEdge reports whether the undirected edge {u, w} exists.
func (o *Overlay) HasEdge(u, w graph.V) bool {
	if u == w {
		return false
	}
	ns := o.Neighbors(u)
	if ms := o.Neighbors(w); len(ms) < len(ns) {
		ns, w = ms, u
	}
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= w })
	return i < len(ns) && ns[i] == w
}

// clone shares the base and copies the delta bookkeeping. The copy is
// O(overridden vertices) — this is what compaction bounds: once drift
// passes the threshold the overlay is folded back into a fresh CSR base
// and the copy shrinks to nothing again.
func (o *Overlay) clone() *Overlay {
	c := &Overlay{
		base:    o.base,
		touched: make([]uint64, len(o.touched)),
		over:    make(map[graph.V][]graph.V, len(o.over)+2),
		edges:   o.edges,
	}
	copy(c.touched, o.touched)
	for v, ns := range o.over {
		c.over[v] = ns
	}
	return c
}

// setNeighbors installs a private adjacency list for v.
func (o *Overlay) setNeighbors(v graph.V, ns []graph.V) {
	o.touched[v>>6] |= 1 << (uint(v) & 63)
	o.over[v] = ns
}

// WithEdge returns a new Overlay with the undirected edge {u, w} added.
// The receiver is unchanged. Callers must ensure the edge is absent and
// u != w.
func (o *Overlay) WithEdge(u, w graph.V) *Overlay {
	c := o.clone()
	c.setNeighbors(u, insertSorted(c.Neighbors(u), w))
	c.setNeighbors(w, insertSorted(c.Neighbors(w), u))
	c.edges++
	return c
}

// WithoutEdge returns a new Overlay with the undirected edge {u, w}
// removed. The receiver is unchanged. Callers must ensure the edge
// exists.
func (o *Overlay) WithoutEdge(u, w graph.V) *Overlay {
	c := o.clone()
	c.setNeighbors(u, removeSorted(c.Neighbors(u), w))
	c.setNeighbors(w, removeSorted(c.Neighbors(w), u))
	c.edges--
	return c
}

// Materialize flattens the overlay into a fresh CSR graph (used by
// compaction rebuilds and ground-truth tests).
func (o *Overlay) Materialize() *graph.Graph {
	b := graph.NewBuilder(o.NumVertices())
	for v := graph.V(0); v < graph.V(o.NumVertices()); v++ {
		for _, w := range o.Neighbors(v) {
			if v < w {
				b.AddEdge(v, w)
			}
		}
	}
	return b.MustBuild()
}

// insertSorted returns a fresh sorted slice with w inserted.
func insertSorted(ns []graph.V, w graph.V) []graph.V {
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= w })
	out := make([]graph.V, 0, len(ns)+1)
	out = append(out, ns[:i]...)
	out = append(out, w)
	return append(out, ns[i:]...)
}

// removeSorted returns a fresh sorted slice with w removed.
func removeSorted(ns []graph.V, w graph.V) []graph.V {
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= w })
	out := make([]graph.V, 0, len(ns)-1)
	out = append(out, ns[:i]...)
	return append(out, ns[i+1:]...)
}

var _ graph.Adjacency = (*Overlay)(nil)
