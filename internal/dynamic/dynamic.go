package dynamic

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qbs/internal/core"
	"qbs/internal/graph"
	"qbs/internal/obs"
	"qbs/internal/traverse"
)

// Options tunes the dynamic index.
type Options struct {
	// RepairBudget caps the affected-vertex set of a deletion repair;
	// past it the column is repaired by a full re-BFS instead (which is
	// cheaper than chasing a huge invalidated region vertex by vertex).
	// 0 picks max(64, |V|/8).
	RepairBudget int
	// CompactFraction triggers an asynchronous compaction rebuild —
	// materialise the overlay into a fresh CSR base and relabel from
	// scratch — once more than this fraction of vertices carry adjacency
	// overrides. The rebuild runs off the write path; updates applied
	// meanwhile are replayed onto the rebuilt state before it is
	// published. 0 picks 0.25; negative disables auto-compaction.
	//
	// Compaction also bounds per-write cost: each update copies the
	// overlay's override bookkeeping (O(overridden vertices)), so with
	// auto-compaction disabled callers should invoke Compact themselves
	// once writes slow down.
	CompactFraction float64
	// Parallelism is the traverse pool width for the heavy BFS sweeps —
	// the initial build, compaction rebuilds and budget-blown full
	// column re-BFSes. 0 means GOMAXPROCS, 1 is sequential. Labels, σ
	// and Δ are bit-identical at every setting; incremental repairs are
	// unaffected (their affected sets are far below the pool threshold).
	Parallelism int
}

// Stats reports dynamic-index activity counters.
type Stats struct {
	Epoch           uint64 // snapshot number, one per applied update or compaction
	Inserts         uint64
	Deletes         uint64
	ColumnsRepaired uint64 // incremental column repairs
	ColumnsRebuilt  uint64 // budget-exceeded fallback re-BFSes
	ColumnsSkipped  uint64 // columns untouched by an update
	LabelsRewritten uint64 // individual label entries changed
	DeltaRecomputes uint64 // Δ lists recomputed
	MetaRebuilds    uint64 // σ changes forcing a meta-state rebuild
	Compactions     uint64
	Overridden      int // vertices with overlay-private adjacency
}

// state is the full incrementally maintained index state. All parts are
// immutable once published; updates copy-on-write only what they touch.
type state struct {
	overlay *Overlay
	cols    []*column
	sigma   []uint8
	ms      *core.MetaState
	delta   [][]graph.Edge
}

// snapshot is a published epoch: the state plus its assembled queryable
// index. Readers resolve one snapshot pointer and work against it
// without any locking; superseded snapshots are reclaimed by the
// garbage collector once the last reader drops them.
type snapshot struct {
	state
	index *core.Index
	epoch uint64
}

type update struct {
	u, w   graph.V
	insert bool
}

// Index is a QbS index over a mutable graph. Queries are lock-free and
// answer against the snapshot current at call time; AddEdge/RemoveEdge
// serialise on an internal mutex, repair the labelling incrementally and
// publish a new snapshot with an atomic pointer swap.
type Index struct {
	n, R      int
	landmarks []graph.V
	landIdx   []int16
	budget    int
	par       int // traverse pool width for full sweeps (resolved, >= 1)
	compactAt int // overridden-vertex threshold; 0 disables

	cur atomic.Pointer[snapshot]

	// pool holds searchers shared across snapshots: a searcher taken for
	// a query is rebound to the current snapshot's index, so workspaces
	// survive snapshot turnover instead of being reallocated per update.
	pool sync.Pool

	mu         sync.Mutex // serialises writers and guards the fields below
	rp         *repairer
	stats      Stats
	rebuilding bool
	pending    []update
	compactWG  sync.WaitGroup
	logger     UpdateLogger // durability hook; nil when not durable
}

// searcher draws a pooled searcher bound to the given snapshot.
//
//qbs:allow zeroalloc pool refill and epoch rebind are the sanctioned cold path; steady-state serving reuses an already-bound searcher
func (d *Index) searcher(s *snapshot) *core.Searcher {
	if sr, ok := d.pool.Get().(*core.Searcher); ok && sr.Rebind(s.index) {
		return sr
	}
	return core.NewSearcher(s.index)
}

// New builds a dynamic index over g with the given landmark set. The
// initial construction does the same work as a static build (one QL/QN
// BFS per landmark plus Δ recovery).
func New(g *graph.Graph, landmarks []graph.V, opts Options) (*Index, error) {
	d, err := newShell(g.NumVertices(), landmarks, opts)
	if err != nil {
		return nil, err
	}
	st, err := d.buildState(NewOverlay(g), d.rp)
	if err != nil {
		return nil, err
	}
	snap, err := d.newSnapshot(st, 0)
	if err != nil {
		return nil, err
	}
	//qbs:allow loggedpublish bootstrap publish at epoch 0; no logger is attached yet
	d.cur.Store(snap)
	return d, nil
}

// newShell validates the landmark set and options and prepares an Index
// without any published state (shared by New and Restore).
func newShell(n int, landmarks []graph.V, opts Options) (*Index, error) {
	if len(landmarks) > 254 {
		return nil, fmt.Errorf("dynamic: %d landmarks exceed the 254 maximum", len(landmarks))
	}
	landIdx := make([]int16, n)
	for i := range landIdx {
		landIdx[i] = -1
	}
	for i, r := range landmarks {
		if r < 0 || int(r) >= n {
			return nil, fmt.Errorf("dynamic: landmark %d out of range", r)
		}
		if landIdx[r] >= 0 {
			return nil, fmt.Errorf("dynamic: duplicate landmark %d", r)
		}
		landIdx[r] = int16(i)
	}
	budget := opts.RepairBudget
	if budget <= 0 {
		budget = n / 8
		if budget < 64 {
			budget = 64
		}
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	compactAt := 0
	if opts.CompactFraction >= 0 {
		f := opts.CompactFraction
		if f == 0 {
			f = 0.25
		}
		compactAt = int(f * float64(n))
		// Floor: on tiny graphs a rebuild costs as little as a repair, so
		// compaction churn (and its extra epochs) buys nothing.
		if compactAt < 32 {
			compactAt = 32
		}
	}

	d := &Index{
		n:         n,
		R:         len(landmarks),
		landmarks: landmarks,
		landIdx:   landIdx,
		budget:    budget,
		par:       par,
		compactAt: compactAt,
		rp:        newRepairer(n, landmarks, landIdx, budget, par),
	}
	return d, nil
}

// buildState constructs the full state for an overlay from scratch,
// sweeping the bit-parallel engine over batches of up to 64 landmark
// columns at a time. Used by New and by compaction.
func (d *Index) buildState(ov *Overlay, rp *repairer) (state, error) {
	R := d.R
	sigma := make([]uint8, R*R)
	for i := range sigma {
		sigma[i] = core.NoEntry
	}
	cols := make([]*column, R)
	for r := 0; r < R; r++ {
		cols[r] = newColumn(d.n)
	}
	// With a parallel engine the settle callback runs from pool workers.
	// Per-vertex column writes are disjoint (each vertex settles exactly
	// once per batch) but the symmetric σ writes can collide when two
	// landmarks settle each other's columns in the same level; σ events
	// are rare, so a mutex there costs nothing.
	par := rp.eng.Parallelism > 1
	var sigMu sync.Mutex
	for base := 0; base < R; base += traverse.MaxSources {
		end := min(base+traverse.MaxSources, R)
		roots := d.landmarks[base:end]
		bcols := cols[base:end]
		err := rp.eng.Run(ov, nil, d.landIdx, roots, core.MaxLabelDist,
			func(v graph.V, depth int32, newL, newN uint64) {
				for w := newL | newN; w != 0; w &= w - 1 {
					bcols[bits.TrailingZeros64(w)].dist[v] = depth
				}
				if newL == 0 {
					return
				}
				d8 := uint8(depth)
				if rj := d.landIdx[v]; rj >= 0 {
					if par {
						sigMu.Lock()
					}
					for w := newL; w != 0; w &= w - 1 {
						a, b := base+bits.TrailingZeros64(w), int(rj)
						sigma[a*R+b] = d8
						sigma[b*R+a] = d8
					}
					if par {
						sigMu.Unlock()
					}
				} else {
					for w := newL; w != 0; w &= w - 1 {
						bcols[bits.TrailingZeros64(w)].lab[v] = d8
					}
				}
			})
		if err != nil {
			return state{}, core.ErrDiameterTooLarge
		}
		for i, r := range roots {
			bcols[i].dist[r] = 0
		}
	}
	ms := core.NewMetaState(d.R, sigma)
	delta := make([][]graph.Edge, ms.NumEdges())
	for k := range delta {
		a, b, wt := ms.Edge(k)
		delta[k] = computeDelta(ov, d.landmarks, cols, a, b, wt)
	}
	return state{overlay: ov, cols: cols, sigma: sigma, ms: ms, delta: delta}, nil
}

func (d *Index) newSnapshot(st state, epoch uint64) (*snapshot, error) {
	labels := make([][]uint8, d.R)
	for i, c := range st.cols {
		labels[i] = c.lab
	}
	ix, err := core.AssembleDynamic(st.overlay, d.landmarks, labels, st.ms, st.delta)
	if err != nil {
		return nil, err
	}
	return &snapshot{state: st, index: ix, epoch: epoch}, nil
}

// commitLocked publishes a prepared snapshot. It cannot fail — every
// fallible step happens in newSnapshot beforehand — which is what lets
// writers log to the WAL between preparation and publication without
// ever leaving a logged epoch unpublished.
//
//qbs:publish
func (d *Index) commitLocked(snap *snapshot) {
	d.cur.Store(snap)
	d.stats.Epoch = snap.epoch
	d.stats.Overridden = snap.overlay.Overridden()
}

// Result reports the outcome of one edge update: whether the graph
// changed, and the epoch and edge count the write published (or found,
// for no-ops). Both are captured under the writer lock, so concurrent
// writers cannot skew a response's epoch past the snapshot containing
// this write.
type Result struct {
	Applied bool
	Epoch   uint64
	Edges   int
}

// AddEdge inserts the undirected edge {u, w}, repairing the index
// incrementally. It reports whether the graph changed (false when the
// edge already exists). The only error conditions are invalid endpoints
// and updates that would push a finite distance beyond the 254-hop label
// representation limit; rejected updates leave the index unchanged.
func (d *Index) AddEdge(u, w graph.V) (bool, error) {
	res, err := d.ApplyEdge(u, w, true)
	return res.Applied, err
}

// RemoveEdge deletes the undirected edge {u, w}; see AddEdge for the
// contract (false when the edge does not exist).
func (d *Index) RemoveEdge(u, w graph.V) (bool, error) {
	res, err := d.ApplyEdge(u, w, false)
	return res.Applied, err
}

// ApplyEdge is AddEdge/RemoveEdge with the published epoch and edge
// count in the result (for callers that echo them back to clients).
func (d *Index) ApplyEdge(u, w graph.V, insert bool) (Result, error) {
	return d.ApplyEdgeTraced(u, w, insert, nil)
}

// ApplyEdgeTraced is ApplyEdge with the caller's span buffer: the WAL
// append and any budget-blown column re-BFSes become child spans of the
// request, making the expensive parts of a write visible in its trace.
// tb may be nil (every recording call is nil-safe).
func (d *Index) ApplyEdgeTraced(u, w graph.V, insert bool, tb *obs.TraceBuf) (Result, error) {
	if u < 0 || int(u) >= d.n || w < 0 || int(w) >= d.n {
		return Result{}, fmt.Errorf("dynamic: edge {%d,%d} out of range [0,%d)", u, w, d.n)
	}
	if u == w {
		return Result{}, fmt.Errorf("dynamic: self-loop {%d,%d} rejected", u, w)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.cur.Load()
	if s.overlay.HasEdge(u, w) == insert {
		// Idempotent no-op: already present / already absent.
		return Result{Applied: false, Epoch: s.epoch, Edges: s.overlay.NumEdges()}, nil
	}
	applyStart := time.Now()
	defer func() {
		if insert {
			mApplyInsertNs.Observe(time.Since(applyStart))
		} else {
			mApplyDeleteNs.Observe(time.Since(applyStart))
		}
	}()
	st, counts, err := d.applyLocked(d.rp, s.state, u, w, insert, tb)
	if err != nil {
		return Result{}, err
	}
	snap, err := d.newSnapshot(st, s.epoch+1)
	if err != nil {
		return Result{}, err
	}
	// Durability: the update must be on the log before its epoch becomes
	// visible. A logging failure rejects the update outright — the caller
	// sees an error and the published state is unchanged, so the log never
	// trails the index it protects. The snapshot is prepared first so
	// nothing can fail between logging and publication: a logged epoch is
	// always published, keeping the log free of orphan records.
	if d.logger != nil {
		sp := tb.StartSpan("wal.append")
		sp.SetInt("epoch", int64(snap.epoch))
		err := d.logger.LogUpdate(snap.epoch, u, w, insert)
		if err != nil {
			sp.Fail()
		}
		sp.End()
		if err != nil {
			return Result{}, fmt.Errorf("dynamic: update not logged: %w", err)
		}
	}
	d.commitLocked(snap)
	if insert {
		d.stats.Inserts++
	} else {
		d.stats.Deletes++
	}
	d.stats.ColumnsRepaired += counts.repaired
	d.stats.ColumnsRebuilt += counts.rebuilt
	d.stats.ColumnsSkipped += counts.skipped
	d.stats.LabelsRewritten += counts.labels
	d.stats.DeltaRecomputes += counts.deltas
	d.stats.MetaRebuilds += counts.metaRebuilds
	if d.rebuilding {
		d.pending = append(d.pending, update{u, w, insert})
	} else {
		d.maybeCompactLocked()
	}
	pub := d.cur.Load()
	return Result{Applied: true, Epoch: pub.epoch, Edges: pub.overlay.NumEdges()}, nil
}

// applyCounts are the maintenance counters of one applied update. They
// are returned rather than added to d.stats directly so compaction
// replay (which re-applies already-counted updates) can discard them.
type applyCounts struct {
	repaired, rebuilt, skipped   uint64
	labels, deltas, metaRebuilds uint64
}

// applyLocked runs one update against st and returns the successor
// state, touching only copies of the parts that change. st itself is
// never mutated, so the caller's snapshot stays valid on error. tb, when
// non-nil, receives a child span for every column whose repair blew the
// budget and fell back to a full re-BFS — the dominant cost of a bad
// delete, and otherwise invisible in a request trace.
func (d *Index) applyLocked(rp *repairer, st state, u, w graph.V, insert bool, tb *obs.TraceBuf) (state, applyCounts, error) {
	var counts applyCounts
	var ov *Overlay
	if insert {
		ov = st.overlay.WithEdge(u, w)
	} else {
		ov = st.overlay.WithoutEdge(u, w)
	}
	sigma := append([]uint8(nil), st.sigma...)
	rp.begin(ov, sigma)

	cols := make([]*column, d.R)
	copy(cols, st.cols)
	for r := 0; r < d.R; r++ {
		c := st.cols[r]
		if c.dist[u] == c.dist[w] {
			// The edge joins a BFS level (or the unreachable region) of
			// this landmark: neither distances nor the shortest-path DAG
			// change, so the column is untouched and stays shared.
			counts.skipped++
			continue
		}
		cc := c.clone()
		cols[r] = cc
		var colStart time.Time
		if tb != nil {
			colStart = time.Now()
		}
		rebuilt, err := rp.repairColumn(cc, r, u, w, insert)
		if err != nil {
			return state{}, counts, err
		}
		if rebuilt {
			counts.rebuilt++
			evColumnRebfs.Emit(obs.Int("landmark", int64(r)))
			if tb != nil {
				sp := tb.AddSpan("dynamic.column_rebfs", colStart, time.Since(colStart))
				sp.SetInt("landmark", int64(r))
			}
		} else {
			counts.repaired++
		}
	}
	counts.labels = uint64(len(rp.labelChanges))

	oldLab := func(v graph.V, rank int) uint8 { return st.cols[rank].lab[v] }
	dirty := dirtyDeltas(cols, sigma, d.R, d.landIdx, rp.labelChanges, u, w, oldLab)

	var ms *core.MetaState
	var delta [][]graph.Edge
	if rp.sigmaChanged {
		counts.metaRebuilds++
		ms = core.NewMetaState(d.R, sigma)
		delta = make([][]graph.Edge, ms.NumEdges())
		for k := range delta {
			a, b, wt := ms.Edge(k)
			if _, bad := dirty[a<<8|b]; !bad {
				if oldID := st.ms.EdgeID(a, b); oldID >= 0 {
					if _, _, oldWt := st.ms.Edge(int(oldID)); oldWt == wt {
						delta[k] = st.delta[oldID]
						continue
					}
				}
			}
			delta[k] = computeDelta(ov, d.landmarks, cols, a, b, wt)
			counts.deltas++
		}
	} else {
		ms = st.ms
		delta = st.delta
		if len(dirty) > 0 {
			delta = append([][]graph.Edge(nil), st.delta...)
			for key := range dirty {
				a, b := key>>8, key&0xff
				k := ms.EdgeID(a, b)
				if k < 0 {
					continue
				}
				_, _, wt := ms.Edge(int(k))
				delta[k] = computeDelta(ov, d.landmarks, cols, a, b, wt)
				counts.deltas++
			}
		}
	}
	return state{overlay: ov, cols: cols, sigma: sigma, ms: ms, delta: delta}, counts, nil
}

// maybeCompactLocked kicks off an asynchronous compaction rebuild when
// the overlay has drifted far enough from its CSR base.
func (d *Index) maybeCompactLocked() {
	if d.compactAt <= 0 || d.rebuilding {
		return
	}
	s := d.cur.Load()
	if s.overlay.Overridden() < d.compactAt {
		return
	}
	d.rebuilding = true
	d.pending = d.pending[:0]
	d.compactWG.Add(1)
	go d.compact(s)
}

// compact materialises the overlay into a fresh CSR base, relabels from
// scratch off the write path, then (under the writer lock) replays every
// update that arrived meanwhile and publishes the compacted state.
func (d *Index) compact(snap *snapshot) {
	defer d.compactWG.Done()
	start := time.Now()
	// Compactions run off any request path; they get their own root
	// trace so a write-lock stall can still be explained after the fact.
	ctb := obs.DefaultTracer.Begin("dynamic.compact", "", 0, false)
	ctb.Root().SetInt("from_epoch", int64(snap.epoch))
	evCompactStart.Emit(obs.Int("from_epoch", int64(snap.epoch)), obs.Int("overridden", int64(snap.overlay.Overridden())))
	defer func() {
		mCompactNs.Observe(time.Since(start))
		obs.DefaultTracer.Finish(ctb)
	}()
	base := snap.overlay.Materialize()
	rp := newRepairer(d.n, d.landmarks, d.landIdx, d.budget, d.par)
	st, err := d.buildState(NewOverlay(base), rp)

	d.mu.Lock()
	defer d.mu.Unlock()
	d.rebuilding = false
	if err != nil {
		evCompactFailed.Emit(obs.Str("stage", "rebuild"), obs.Str("error", err.Error()))
		return // state unmaintainable only if it already was; keep serving
	}
	for _, up := range d.pending {
		// Replays traverse the exact update sequence already accepted, so
		// repair cannot fail; bail out conservatively if it ever does.
		// Maintenance counters are discarded: these updates were already
		// counted when applied live.
		st, _, err = d.applyLocked(rp, st, up.u, up.w, up.insert, nil)
		if err != nil {
			d.pending = d.pending[:0]
			evCompactFailed.Emit(obs.Str("stage", "replay"), obs.Str("error", err.Error()))
			return
		}
	}
	d.pending = d.pending[:0]
	snap, snapErr := d.newSnapshot(st, d.cur.Load().epoch+1)
	if snapErr != nil {
		evCompactFailed.Emit(obs.Str("stage", "snapshot"), obs.Str("error", snapErr.Error()))
		return
	}
	if d.logger != nil {
		// A compaction advances the epoch without an edge mutation; log it
		// so replayed epochs stay aligned with live ones. If the log is
		// unavailable, skip publishing — the pre-compaction state keeps
		// serving and drift will trigger another attempt.
		if err := d.logger.LogCompaction(snap.epoch); err != nil {
			evCompactFailed.Emit(obs.Str("stage", "log"), obs.Str("error", err.Error()))
			return
		}
	}
	d.commitLocked(snap)
	d.stats.Compactions++
	evCompactDone.Emit(obs.Int("epoch", int64(snap.epoch)), obs.Int("ms", time.Since(start).Milliseconds()))
}

// WaitCompaction blocks until any in-flight compaction has finished
// (used by tests and graceful shutdown).
func (d *Index) WaitCompaction() { d.compactWG.Wait() }

// Compact synchronously rebuilds the CSR base and labelling from the
// current graph.
func (d *Index) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.cur.Load()
	rp := newRepairer(d.n, d.landmarks, d.landIdx, d.budget, d.par)
	st, err := d.buildState(NewOverlay(s.overlay.Materialize()), rp)
	if err != nil {
		return err
	}
	snap, err := d.newSnapshot(st, s.epoch+1)
	if err != nil {
		return err
	}
	if d.logger != nil {
		if err := d.logger.LogCompaction(snap.epoch); err != nil {
			return fmt.Errorf("dynamic: compaction not logged: %w", err)
		}
	}
	d.commitLocked(snap)
	d.stats.Compactions++
	return nil
}

// ---------------------------------------------------------------------
// Read side. Every reader resolves the current snapshot once and works
// against it; writers never block readers.

// Query answers SPG(u, v) on the current snapshot.
func (d *Index) Query(u, v graph.V) *graph.SPG {
	sr := d.searcher(d.cur.Load())
	defer d.pool.Put(sr)
	return sr.Query(u, v)
}

// QueryInto answers SPG(u, v) on the current snapshot into a
// caller-owned result, resetting it first; see core.Searcher.QueryInto.
func (d *Index) QueryInto(dst *graph.SPG, u, v graph.V) *graph.SPG {
	sr := d.searcher(d.cur.Load())
	defer d.pool.Put(sr)
	sr.QueryInto(dst, u, v)
	return dst
}

// QueryWithStats answers SPG(u, v) with query internals.
func (d *Index) QueryWithStats(u, v graph.V) (*graph.SPG, core.QueryStats) {
	sr := d.searcher(d.cur.Load())
	defer d.pool.Put(sr)
	return sr.QueryWithStats(u, v)
}

// Distance returns d_G(u, v) on the current snapshot.
func (d *Index) Distance(u, v graph.V) int32 {
	sr := d.searcher(d.cur.Load())
	defer d.pool.Put(sr)
	return sr.Distance(u, v)
}

// Sketch computes the query sketch on the current snapshot.
func (d *Index) Sketch(u, v graph.V) *core.Sketch {
	return d.cur.Load().index.Sketch(u, v)
}

// QueryBatch answers many queries concurrently against one consistent
// snapshot (all answers reflect the same epoch). parallelism 0 means
// GOMAXPROCS. A panicking query leaves its slot nil and the batch
// completes; see core.QueryBatchInto.
func (d *Index) QueryBatch(pairs [][2]graph.V, parallelism int) []*graph.SPG {
	out := make([]*graph.SPG, len(pairs))
	s := d.cur.Load()
	core.QueryBatchInto(out, parallelism,
		func(i int) (graph.V, graph.V) { return pairs[i][0], pairs[i][1] },
		func() *core.Searcher { return d.searcher(s) },
		func(sr *core.Searcher) { d.pool.Put(sr) })
	return out
}

// Epoch returns the current snapshot number.
func (d *Index) Epoch() uint64 { return d.cur.Load().epoch }

// EpochEdges returns the current epoch and edge count as one consistent
// pair: both come from a single snapshot resolution, so the pair always
// describes a state that actually existed (unlike separate Epoch and
// NumEdges calls racing a writer).
func (d *Index) EpochEdges() (uint64, int) {
	s := d.cur.Load()
	return s.epoch, s.overlay.NumEdges()
}

// NumVertices returns |V| (fixed at construction).
func (d *Index) NumVertices() int { return d.n }

// NumEdges returns the current undirected edge count.
func (d *Index) NumEdges() int { return d.cur.Load().overlay.NumEdges() }

// HasEdge reports whether {u, w} currently exists.
func (d *Index) HasEdge(u, w graph.V) bool {
	if u < 0 || int(u) >= d.n || w < 0 || int(w) >= d.n {
		return false
	}
	return d.cur.Load().overlay.HasEdge(u, w)
}

// Landmarks returns the (fixed) landmark set in rank order.
func (d *Index) Landmarks() []graph.V { return d.landmarks }

// CurrentIndex returns the assembled index of the current snapshot (for
// introspection and tests; the instance is immutable).
func (d *Index) CurrentIndex() *core.Index { return d.cur.Load().index }

// CurrentGraph returns the current snapshot's overlay graph view.
func (d *Index) CurrentGraph() *Overlay { return d.cur.Load().overlay }

// Stats returns a copy of the activity counters.
func (d *Index) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.stats
	st.Overridden = d.cur.Load().overlay.Overridden()
	return st
}
