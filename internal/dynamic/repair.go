package dynamic

import (
	"errors"

	"qbs/internal/core"
	"qbs/internal/graph"
	"qbs/internal/traverse"
)

// Incremental repair of one labelling column (one landmark-rooted QL/QN
// BFS layering, Algorithm 2) after a single edge update.
//
// Each column carries two arrays: dist, the plain BFS distance from the
// landmark to every vertex, and lab, the QbS label — dist(v) when some
// shortest landmark–v path avoids all other landmarks, NoEntry
// otherwise. The pair is enough to repair the column locally:
//
//   - dist is a standard dynamic-SSSP problem. Insertions can only
//     decrease distances (decrease-only BFS from the improved endpoint);
//     deletions invalidate exactly the vertices whose every depth-(d−1)
//     parent is invalidated (affected-vertex detection, then a bounded
//     re-BFS of the affected set seeded from its unaffected boundary).
//
//   - lab ("membership") is a monotone fixpoint over the shortest-path
//     DAG: a non-landmark v is labelled iff some parent is the landmark
//     itself or a labelled non-landmark. Membership is recomputed for the
//     perturbed region in increasing-distance order, so every vertex sees
//     final parent states; a changed vertex pushes its DAG children,
//     cascading exactly as far as the perturbation reaches.
//
// The same fixpoint maintains the meta-graph row of the column's
// landmark: another landmark r' has a meta-edge (σ = dist(r')) iff some
// parent of r' is labelled, which is recomputed whenever r' is touched.

// errBudget aborts a deletion repair whose affected set outgrew
// Options.RepairBudget; the caller falls back to a full column re-BFS.
var errBudget = errors.New("dynamic: repair budget exceeded")

// column is one landmark's incrementally maintained state.
type column struct {
	dist []int32 // BFS distance from the landmark; graph.InfDist unreachable
	lab  []uint8 // QbS label: dist if an avoiding shortest path exists, else NoEntry
}

func newColumn(n int) *column {
	c := &column{dist: make([]int32, n), lab: make([]uint8, n)}
	for i := range c.dist {
		c.dist[i] = graph.InfDist
		c.lab[i] = core.NoEntry
	}
	return c
}

func (c *column) clone() *column {
	d := &column{dist: make([]int32, len(c.dist)), lab: make([]uint8, len(c.lab))}
	copy(d.dist, c.dist)
	copy(d.lab, c.lab)
	return d
}

// labelChange records one rewritten label entry (consumed by Δ
// maintenance).
type labelChange struct {
	v        graph.V
	rank     int
	old, new uint8
}

// repairer carries the reusable workspaces for column repair. It is
// owned by the writer (one mutation at a time); a second instance is
// created for background compaction so the two never share scratch.
type repairer struct {
	n, R      int
	landmarks []graph.V
	landIdx   []int16
	budget    int

	// per-update state, set by begin/beginColumn
	g     *Overlay
	c     *column
	rank  int
	sigma []uint8 // working copy of the merged σ matrix for this update

	queue []graph.V

	// membership fixpoint: buckets by distance level, dedup stamps
	buckets [][]graph.V
	inQ     []uint32
	inQGen  uint32

	// deletion repair scratch
	aff       []uint32
	affGen    uint32
	affList   []graph.V
	fin       []uint32
	finGen    uint32
	tent      []int32
	cur, next []graph.V

	// full column rebuild scratch: the shared bit-parallel engine (also
	// used 64 columns at a time by buildState) and the diff buffers.
	eng     *traverse.MultiBFS
	newDist []int32
	newLab  []uint8
	rootBuf [1]graph.V

	// outputs accumulated across the columns of one update
	labelChanges []labelChange
	sigmaChanged bool
}

func newRepairer(n int, landmarks []graph.V, landIdx []int16, budget, parallelism int) *repairer {
	eng := traverse.NewMultiBFS(n)
	eng.Parallelism = parallelism
	return &repairer{
		n:         n,
		R:         len(landmarks),
		landmarks: landmarks,
		landIdx:   landIdx,
		budget:    budget,
		buckets:   make([][]graph.V, int(core.MaxLabelDist)+1),
		inQ:       make([]uint32, n),
		aff:       make([]uint32, n),
		fin:       make([]uint32, n),
		tent:      make([]int32, n),
		eng:       eng,
		newDist:   make([]int32, n),
		newLab:    make([]uint8, n),
	}
}

// begin starts a new update: g is the post-update overlay, sigma the
// private working copy of the merged σ matrix.
func (rp *repairer) begin(g *Overlay, sigma []uint8) {
	rp.g = g
	rp.sigma = sigma
	rp.labelChanges = rp.labelChanges[:0]
	rp.sigmaChanged = false
}

// repairColumn applies the update {u, w} to the (already cloned) column
// of the given rank. Deletion repairs that blow the budget fall back to
// a full column re-BFS. The only error is core.ErrDiameterTooLarge.
func (rp *repairer) repairColumn(c *column, rank int, u, w graph.V, insert bool) (rebuilt bool, err error) {
	rp.c, rp.rank = c, rank
	if insert {
		err = rp.insertRepair(u, w)
	} else {
		err = rp.deleteRepair(u, w)
	}
	if err == errBudget {
		return true, rp.rebuildColumn(c, rank)
	}
	return false, err
}

// ---------------------------------------------------------------------
// Insertion: decrease-only distance repair + membership fixpoint.

func (rp *repairer) insertRepair(u, w graph.V) error {
	c := rp.c
	du, dw := c.dist[u], c.dist[w]
	if du > dw {
		u, w = w, u
		du, dw = dw, du
	}
	if du == graph.InfDist || dw == du {
		return nil // same level (or both unreachable): no DAG change
	}
	rp.inQGen++
	if dw == du+1 {
		// No distance change; w gained the parent u.
		rp.seed(u)
		rp.seed(w)
		rp.runFixpoint()
		return nil
	}
	// Distances decrease, cascading from w.
	if du+1 > core.MaxLabelDist {
		return core.ErrDiameterTooLarge
	}
	q := append(rp.queue[:0], w)
	c.dist[w] = du + 1
	for head := 0; head < len(q); head++ {
		x := q[head]
		nd := c.dist[x] + 1
		for _, y := range rp.g.Neighbors(x) {
			if c.dist[y] > nd {
				if nd > core.MaxLabelDist {
					rp.queue = q
					return core.ErrDiameterTooLarge
				}
				c.dist[y] = nd
				q = append(q, y)
			}
		}
	}
	rp.queue = q
	// Membership seeds: the endpoints, every vertex whose distance
	// changed, and its whole neighbourhood (old parents/children lost or
	// gained the vertex as a DAG neighbour).
	rp.seed(u)
	rp.seed(w)
	for _, x := range q {
		rp.seed(x)
		for _, y := range rp.g.Neighbors(x) {
			rp.seed(y)
		}
	}
	rp.runFixpoint()
	return nil
}

// ---------------------------------------------------------------------
// Deletion: affected-vertex detection, bounded re-BFS, membership.

func (rp *repairer) deleteRepair(u, w graph.V) error {
	c := rp.c
	du, dw := c.dist[u], c.dist[w]
	if du == dw {
		return nil // the edge joined a level (or the unreachable region)
	}
	if du > dw {
		u, w = w, u
		du, dw = dw, du
	}
	// The edge existed, so dw = du+1: w may have lost its only parent.
	rp.inQGen++
	orphan := true
	for _, p := range rp.g.Neighbors(w) {
		if c.dist[p] == du {
			orphan = false
			break
		}
	}
	if !orphan {
		rp.seed(u)
		rp.seed(w)
		rp.runFixpoint()
		return nil
	}

	// Affected detection, level-synchronous from w: a vertex one level
	// deeper is affected iff all its parents are affected. Processing a
	// whole level before the next keeps the parent test exact.
	rp.affGen++
	rp.aff[w] = rp.affGen
	affected := append(rp.affList[:0], w)
	cur := append(rp.cur[:0], w)
	lvl := dw
	for len(cur) > 0 {
		next := rp.next[:0]
		for _, x := range cur {
			for _, y := range rp.g.Neighbors(x) {
				if c.dist[y] != lvl+1 || rp.aff[y] == rp.affGen {
					continue
				}
				orphaned := true
				for _, p := range rp.g.Neighbors(y) {
					if c.dist[p] == lvl && rp.aff[p] != rp.affGen {
						orphaned = false
						break
					}
				}
				if orphaned {
					rp.aff[y] = rp.affGen
					next = append(next, y)
					affected = append(affected, y)
				}
			}
		}
		rp.cur, rp.next = next, cur
		cur = next
		lvl++
		if len(affected) > rp.budget {
			rp.affList = affected
			return errBudget
		}
	}
	rp.affList = affected

	// Re-BFS of the affected set from its unaffected boundary: tentative
	// distances come from unaffected neighbours (whose distances are
	// final), then settle in increasing order through a bucket queue.
	rp.finGen++
	for _, x := range affected {
		t := graph.InfDist
		for _, p := range rp.g.Neighbors(x) {
			if rp.aff[p] != rp.affGen && c.dist[p] != graph.InfDist && c.dist[p]+1 < t {
				t = c.dist[p] + 1
			}
		}
		rp.tent[x] = t
		if t <= core.MaxLabelDist {
			rp.buckets[t] = append(rp.buckets[t], x)
		}
	}
	for d := int32(0); d <= core.MaxLabelDist; d++ {
		for i := 0; i < len(rp.buckets[d]); i++ {
			x := rp.buckets[d][i]
			if rp.fin[x] == rp.finGen || rp.tent[x] != d {
				continue
			}
			rp.fin[x] = rp.finGen
			c.dist[x] = d
			for _, y := range rp.g.Neighbors(x) {
				if rp.aff[y] == rp.affGen && rp.fin[y] != rp.finGen && d+1 < rp.tent[y] {
					rp.tent[y] = d + 1
					if d+1 <= core.MaxLabelDist {
						rp.buckets[d+1] = append(rp.buckets[d+1], y)
					}
				}
			}
		}
		rp.buckets[d] = rp.buckets[d][:0]
	}
	for _, x := range affected {
		if rp.fin[x] != rp.finGen {
			if rp.tent[x] != graph.InfDist {
				return core.ErrDiameterTooLarge
			}
			c.dist[x] = graph.InfDist
		}
	}

	// Membership: endpoints, the affected set, and its neighbourhood.
	rp.seed(u)
	rp.seed(w)
	for _, x := range affected {
		rp.seed(x)
		for _, y := range rp.g.Neighbors(x) {
			rp.seed(y)
		}
	}
	rp.runFixpoint()
	return nil
}

// ---------------------------------------------------------------------
// Membership fixpoint.

// seed queues v for membership recomputation at its (final) distance
// level. Unreachable vertices are resolved immediately: no label, no
// meta-edge.
func (rp *repairer) seed(v graph.V) {
	if rp.inQ[v] == rp.inQGen {
		return
	}
	rp.inQ[v] = rp.inQGen
	d := rp.c.dist[v]
	if d == graph.InfDist {
		if ri := rp.landIdx[v]; ri >= 0 {
			if int(ri) != rp.rank {
				rp.recordSigma(int(ri), core.NoEntry)
			}
			return
		}
		if old := rp.c.lab[v]; old != core.NoEntry {
			rp.c.lab[v] = core.NoEntry
			rp.labelChanges = append(rp.labelChanges, labelChange{v, rp.rank, old, core.NoEntry})
		}
		return
	}
	rp.buckets[d] = append(rp.buckets[d], v)
}

// runFixpoint drains the level buckets in increasing distance order.
// Recomputing a vertex at level d only reads level d−1, which is final
// by then; a change pushes the vertex's level-(d+1) neighbours.
func (rp *repairer) runFixpoint() {
	for d := int32(0); d <= core.MaxLabelDist; d++ {
		for i := 0; i < len(rp.buckets[d]); i++ {
			rp.recompute(rp.buckets[d][i])
		}
		rp.buckets[d] = rp.buckets[d][:0]
	}
}

// goodPred reports whether parent p extends an avoiding shortest path:
// the column's own landmark, or a labelled non-landmark.
func (rp *repairer) goodPred(p graph.V) bool {
	if ri := rp.landIdx[p]; ri >= 0 {
		return int(ri) == rp.rank
	}
	return rp.c.lab[p] != core.NoEntry
}

func (rp *repairer) recompute(v graph.V) {
	c := rp.c
	d := c.dist[v]
	ri := rp.landIdx[v]
	if ri >= 0 && int(ri) == rp.rank {
		return // the root itself carries no label
	}
	good := false
	want := d - 1
	for _, p := range rp.g.Neighbors(v) {
		if c.dist[p] == want && rp.goodPred(p) {
			good = true
			break
		}
	}
	nv := core.NoEntry
	if good {
		nv = uint8(d)
	}
	if ri >= 0 {
		rp.recordSigma(int(ri), nv)
		return // landmarks absorb: children never see them as good parents
	}
	if old := c.lab[v]; old != nv {
		c.lab[v] = nv
		rp.labelChanges = append(rp.labelChanges, labelChange{v, rp.rank, old, nv})
		for _, y := range rp.g.Neighbors(v) {
			if c.dist[y] == d+1 && rp.inQ[y] != rp.inQGen {
				rp.inQ[y] = rp.inQGen
				rp.buckets[d+1] = append(rp.buckets[d+1], y)
			}
		}
	}
}

// recordSigma updates σ(rank, other) in the working matrix (both
// triangle entries; the symmetric column computes the same ground truth).
func (rp *repairer) recordSigma(other int, nv uint8) {
	at := rp.rank*rp.R + other
	if rp.sigma[at] != nv {
		rp.sigma[at] = nv
		rp.sigma[other*rp.R+rp.rank] = nv
		rp.sigmaChanged = true
	}
}

// ---------------------------------------------------------------------
// Full column rebuild: the QL/QN BFS of Algorithm 2 over the overlay,
// run through the direction-optimizing bit-parallel engine (batch width
// one) and recording the diff against the column's previous state. Used
// as the budget fallback for expensive deletions and by compaction
// replay.

func (rp *repairer) rebuildColumn(c *column, rank int) error {
	rp.c, rp.rank = c, rank
	root := rp.landmarks[rank]
	newDist, newLab := rp.newDist, rp.newLab
	for i := range newDist {
		newDist[i] = graph.InfDist
		newLab[i] = core.NoEntry
	}
	var sigRow [256]uint8
	for i := 0; i < rp.R; i++ {
		sigRow[i] = core.NoEntry
	}

	newDist[root] = 0
	rp.rootBuf[0] = root
	err := rp.eng.Run(rp.g, nil, rp.landIdx, rp.rootBuf[:], core.MaxLabelDist,
		func(v graph.V, depth int32, newL, _ uint64) {
			newDist[v] = depth
			if newL != 0 {
				if rj := rp.landIdx[v]; rj >= 0 {
					sigRow[rj] = uint8(depth)
				} else {
					newLab[v] = uint8(depth)
				}
			}
		})
	if err != nil {
		return core.ErrDiameterTooLarge
	}

	for v := 0; v < rp.n; v++ {
		if old := c.lab[v]; old != newLab[v] {
			rp.labelChanges = append(rp.labelChanges, labelChange{graph.V(v), rank, old, newLab[v]})
		}
	}
	copy(c.dist, newDist)
	copy(c.lab, newLab)
	for i := 0; i < rp.R; i++ {
		if i != rank {
			rp.recordSigma(i, sigRow[i])
		}
	}
	return nil
}
