package dynamic

import (
	"qbs/internal/obs"
)

// Update-path instrumentation on the process-wide registry: apply
// latency per operation kind (lock hold + repair + snapshot prep) and
// background compaction duration.
var (
	mApplyInsertNs = obs.Default.Histogram("qbs_dynamic_apply_ns", `op="insert"`)
	mApplyDeleteNs = obs.Default.Histogram("qbs_dynamic_apply_ns", `op="delete"`)
	mCompactNs     = obs.Default.Histogram("qbs_dynamic_compact_ns", "")
)
