package dynamic

import (
	"qbs/internal/obs"
)

// Update-path instrumentation on the process-wide registry: apply
// latency per operation kind (lock hold + repair + snapshot prep) and
// background compaction duration.
var (
	mApplyInsertNs = obs.Default.Histogram("qbs_dynamic_apply_ns", `op="insert"`)
	mApplyDeleteNs = obs.Default.Histogram("qbs_dynamic_apply_ns", `op="delete"`)
	mCompactNs     = obs.Default.Histogram("qbs_dynamic_compact_ns", "")
)

// Structured events: compaction lifecycle (the background transition
// that used to be invisible when it failed — the index keeps serving
// from the overlay) and budget-blown column re-BFS, which is the
// index-quality signal behind a latency regression.
var (
	evCompactStart  = obs.DefaultJournal.Def("dynamic", "compact_start", obs.LevelInfo)
	evCompactDone   = obs.DefaultJournal.Def("dynamic", "compact_done", obs.LevelInfo)
	evCompactFailed = obs.DefaultJournal.Def("dynamic", "compact_failed", obs.LevelError)
	evColumnRebfs   = obs.DefaultJournal.Def("dynamic", "column_rebfs", obs.LevelDebug)
)
