package dynamic

import (
	"fmt"

	"qbs/internal/core"
	"qbs/internal/graph"
)

// Persistence hooks for the durable store (internal/store). The dynamic
// index itself stays storage-agnostic: it exposes (1) an UpdateLogger
// callback invoked with every epoch advance *before* the epoch is
// published, (2) a frozen PersistentState view of one snapshot for
// serialization, and (3) Restore/ReplayEdge/ReplayEpoch, the recovery
// entry points that reassemble an index from persisted state and drive
// logged updates back through the ordinary repair path.

// UpdateLogger receives every epoch advance of a durable index before
// the epoch becomes visible to readers. Implementations append to a
// write-ahead log: when LogUpdate returns nil the record is considered
// committed, so a crash immediately after publication replays it.
// Returning an error rejects the update (the index stays unchanged).
//
// Calls arrive serialised under the index's writer lock, in strictly
// increasing epoch order with no gaps.
type UpdateLogger interface {
	// LogUpdate records one applied edge mutation and the epoch it will
	// publish.
	LogUpdate(epoch uint64, u, w graph.V, insert bool) error
	// LogCompaction records an epoch advance with no edge mutation (a
	// compaction publish). Replay bumps the epoch without touching edges.
	LogCompaction(epoch uint64) error
}

// SetLogger attaches (or with nil detaches) the durability hook. It
// synchronises with in-flight writers: once SetLogger returns, no
// further calls reach the previous logger.
func (d *Index) SetLogger(l UpdateLogger) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.logger = l
}

// PersistentState is a frozen view of one published snapshot — the unit
// the durable store serialises. All slices alias copy-on-write snapshot
// state (immutable by construction) except Graph, which is materialised
// fresh from the overlay; none may be modified.
type PersistentState struct {
	Epoch     uint64
	Graph     *graph.Graph // current adjacency, flattened to CSR
	Landmarks []graph.V
	Sigma     []uint8        // |R|×|R| meta-edge weights
	Dists     [][]int32      // per landmark rank: BFS distance column
	Labels    [][]uint8      // per landmark rank: QbS label column
	Delta     [][]graph.Edge // per meta-edge, in MetaState edge order
}

// Persistent captures the current snapshot for serialization. The
// capture is consistent even against concurrent writers: everything is
// resolved from a single snapshot pointer.
func (d *Index) Persistent() PersistentState {
	s := d.cur.Load()
	ps := PersistentState{
		Epoch:     s.epoch,
		Graph:     s.overlay.Materialize(),
		Landmarks: d.landmarks,
		Sigma:     s.sigma,
		Dists:     make([][]int32, len(s.cols)),
		Labels:    make([][]uint8, len(s.cols)),
		Delta:     s.delta,
	}
	for i, c := range s.cols {
		ps.Dists[i] = c.dist
		ps.Labels[i] = c.lab
	}
	return ps
}

// Restore reassembles a dynamic index from persisted state without any
// BFS work: the columns, σ and Δ are adopted by reference (they may be
// views into a read-only snapshot arena — the copy-on-write update path
// never writes into adopted state), and only the derived meta-state
// (APSP + meta-SPG tables, O(|R|³) independent of graph size) is
// recomputed. delta must align with the deterministic meta-edge order
// NewMetaState derives from sigma. The index publishes at the given
// epoch; callers then replay any logged updates beyond it.
func Restore(g *graph.Graph, landmarks []graph.V, dists [][]int32, labels [][]uint8, sigma []uint8, delta [][]graph.Edge, epoch uint64, opts Options) (*Index, error) {
	d, err := newShell(g.NumVertices(), landmarks, opts)
	if err != nil {
		return nil, err
	}
	R := d.R
	if len(dists) != R || len(labels) != R {
		return nil, fmt.Errorf("dynamic: restore with %d dist / %d label columns for %d landmarks", len(dists), len(labels), R)
	}
	if len(sigma) != R*R {
		return nil, fmt.Errorf("dynamic: restore with %d sigma entries, want %d", len(sigma), R*R)
	}
	cols := make([]*column, R)
	for r := 0; r < R; r++ {
		if len(dists[r]) != d.n || len(labels[r]) != d.n {
			return nil, fmt.Errorf("dynamic: restore column %d has %d/%d entries for %d vertices", r, len(dists[r]), len(labels[r]), d.n)
		}
		cols[r] = &column{dist: dists[r], lab: labels[r]}
	}
	st := state{
		overlay: NewOverlay(g),
		cols:    cols,
		sigma:   sigma,
		ms:      core.NewMetaState(R, sigma),
		delta:   delta,
	}
	snap, err := d.newSnapshot(st, epoch)
	if err != nil {
		return nil, err
	}
	//qbs:allow loggedpublish restore republishes an already-durable snapshot; there is nothing new to log
	d.cur.Store(snap)
	d.stats.Epoch = epoch
	return d, nil
}

// ReplayEdge re-applies one logged update during recovery. It runs the
// same incremental repair as a live update but skips logging (the record
// is already on disk) and compaction scheduling (epochs must track the
// log exactly while replaying). The record's epoch must be the immediate
// successor of the current one, and the mutation must actually change
// the graph — a valid log only contains applied updates, so either
// violation reports log/state divergence.
//
//qbs:allow loggedpublish replay publishes a record that is already on disk; logging it again would duplicate it
func (d *Index) ReplayEdge(u, w graph.V, insert bool, epoch uint64) error {
	if u < 0 || int(u) >= d.n || w < 0 || int(w) >= d.n || u == w {
		return fmt.Errorf("dynamic: replayed edge {%d,%d} out of range [0,%d)", u, w, d.n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.cur.Load()
	if epoch != s.epoch+1 {
		return fmt.Errorf("dynamic: replay epoch %d does not follow current epoch %d", epoch, s.epoch)
	}
	if s.overlay.HasEdge(u, w) == insert {
		return fmt.Errorf("dynamic: replayed update {%d,%d} insert=%v is a no-op (log and snapshot diverged)", u, w, insert)
	}
	st, counts, err := d.applyLocked(d.rp, s.state, u, w, insert, nil)
	if err != nil {
		return err
	}
	snap, err := d.newSnapshot(st, epoch)
	if err != nil {
		return err
	}
	d.commitLocked(snap)
	if insert {
		d.stats.Inserts++
	} else {
		d.stats.Deletes++
	}
	d.stats.ColumnsRepaired += counts.repaired
	d.stats.ColumnsRebuilt += counts.rebuilt
	d.stats.ColumnsSkipped += counts.skipped
	d.stats.LabelsRewritten += counts.labels
	d.stats.DeltaRecomputes += counts.deltas
	d.stats.MetaRebuilds += counts.metaRebuilds
	return nil
}

// ReplayOp is one replicated log record, the unit ApplyStream consumes:
// either an edge mutation (Insert reports the direction) or, when
// Compact is set, a bare epoch advance published by a compaction.
type ReplayOp struct {
	Epoch   uint64
	U, W    graph.V
	Insert  bool
	Compact bool
}

// ApplyStream replays a batch of logged operations in order — the
// replica-side entry point for WAL shipping. Ops at or below the
// current epoch are skipped (the bootstrap snapshot or an earlier batch
// already covers them); the rest run through the same incremental
// repair as recovery replay, so a replica that consumes the primary's
// log converges to bit-identical labels, σ and Δ at every epoch. It
// returns how many ops applied; on error the stream stops at the
// offending op with everything before it applied and published.
func (d *Index) ApplyStream(ops []ReplayOp) (int, error) {
	applied := 0
	for _, op := range ops {
		if op.Epoch <= d.Epoch() {
			continue
		}
		var err error
		if op.Compact {
			err = d.ReplayEpoch(op.Epoch)
		} else {
			err = d.ReplayEdge(op.U, op.W, op.Insert, op.Epoch)
		}
		if err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}

// ReplayEpoch re-applies a logged compaction marker: the current state
// is republished unchanged at the given epoch. (Replay does not redo the
// compaction itself — a compaction rebuild produces bit-identical
// labels, σ and Δ by the repair-equals-rebuild invariant, so only the
// epoch number needs to advance.)
func (d *Index) ReplayEpoch(epoch uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.cur.Load()
	if epoch != s.epoch+1 {
		return fmt.Errorf("dynamic: replay epoch %d does not follow current epoch %d", epoch, s.epoch)
	}
	//qbs:allow loggedpublish replaying a compaction marker that is already on disk
	d.cur.Store(&snapshot{state: s.state, index: s.index, epoch: epoch})
	d.stats.Epoch = epoch
	return nil
}
