package dynamic

import (
	"math/rand"
	"reflect"
	"testing"

	"qbs/internal/workload"
)

// compareStates requires two indexes to hold bit-identical published
// state: σ, every column's distance and label arrays, and Δ.
func compareStates(t *testing.T, seq, par *Index, when string) {
	t.Helper()
	a, b := seq.cur.Load(), par.cur.Load()
	if !reflect.DeepEqual(a.sigma, b.sigma) {
		t.Fatalf("%s: sigma differs between sequential and parallel", when)
	}
	for r := range a.cols {
		if !reflect.DeepEqual(a.cols[r].dist, b.cols[r].dist) {
			t.Fatalf("%s: column %d distances differ", when, r)
		}
		if !reflect.DeepEqual(a.cols[r].lab, b.cols[r].lab) {
			t.Fatalf("%s: column %d labels differ", when, r)
		}
	}
	if !reflect.DeepEqual(a.delta, b.delta) {
		t.Fatalf("%s: delta differs", when)
	}
}

// TestParallelDynamicBitIdentical builds the dynamic index with the
// traverse pool on and off over a graph large enough for the pool to
// engage, then pushes the same write stream through both with
// RepairBudget 1 — so every deletion falls through to the full column
// re-BFS, the parallel rebuild path — and requires the published state
// to stay bit-identical throughout.
func TestParallelDynamicBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-vertex builds")
	}
	rng := rand.New(rand.NewSource(11))
	g := randomMutableGraph(6000, 18000, rng)
	lms := g.TopDegreeVertices(12)
	build := func(par int) *Index {
		d, err := New(g, lms, Options{RepairBudget: 1, CompactFraction: -1, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	seq, par := build(1), build(4)
	compareStates(t, seq, par, "after build")

	for i, op := range workload.MixedOps(g, 24, 1.0, 17) {
		apply := func(d *Index) error {
			var err error
			switch op.Kind {
			case workload.OpInsert:
				_, err = d.AddEdge(op.U, op.V)
			case workload.OpDelete:
				_, err = d.RemoveEdge(op.U, op.V)
			}
			return err
		}
		if err := apply(seq); err != nil {
			t.Fatalf("op %d on sequential: %v", i, err)
		}
		if err := apply(par); err != nil {
			t.Fatalf("op %d on parallel: %v", i, err)
		}
	}
	compareStates(t, seq, par, "after churn")

	if st := par.Stats(); st.ColumnsRebuilt == 0 {
		t.Fatalf("budget-1 churn triggered no full column rebuilds: %+v", st)
	}
}
