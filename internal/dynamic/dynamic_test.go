package dynamic

import (
	"fmt"
	"math/rand"
	"testing"

	"qbs/internal/bfs"
	"qbs/internal/core"
	"qbs/internal/graph"
)

// checkAgainstFresh verifies the incrementally maintained state equals a
// from-scratch static build over the materialised graph: label matrix,
// meta-graph (σ, APSP) and every Δ list, bit for bit.
func checkAgainstFresh(t *testing.T, d *Index) {
	t.Helper()
	g := d.CurrentGraph().Materialize()
	fresh, err := core.Build(g, core.Options{Landmarks: d.Landmarks(), Parallelism: 1})
	if err != nil {
		t.Fatalf("fresh build failed: %v", err)
	}
	cur := d.CurrentIndex()
	n := g.NumVertices()
	R := len(d.Landmarks())
	for r := 0; r < R; r++ {
		for v := 0; v < n; v++ {
			cd, cok := cur.LabelEntry(graph.V(v), r)
			fd, fok := fresh.LabelEntry(graph.V(v), r)
			if cok != fok || cd != fd {
				t.Fatalf("label (v=%d, rank=%d): dynamic (%d,%v) vs fresh (%d,%v)", v, r, cd, cok, fd, fok)
			}
		}
	}
	for i := 0; i < R; i++ {
		for j := 0; j < R; j++ {
			cw, cok := cur.MetaEdgeWeight(i, j)
			fw, fok := fresh.MetaEdgeWeight(i, j)
			if cok != fok || cw != fw {
				t.Fatalf("sigma (%d,%d): dynamic (%d,%v) vs fresh (%d,%v)", i, j, cw, cok, fw, fok)
			}
			if cur.MetaDist(i, j) != fresh.MetaDist(i, j) {
				t.Fatalf("meta APSP (%d,%d): %d vs %d", i, j, cur.MetaDist(i, j), fresh.MetaDist(i, j))
			}
		}
	}
	cm, fm := cur.MetaEdges(), fresh.MetaEdges()
	if len(cm) != len(fm) {
		t.Fatalf("meta edge count: %d vs %d", len(cm), len(fm))
	}
	for k := range cm {
		if cm[k] != fm[k] {
			t.Fatalf("meta edge %d: %v vs %v", k, cm[k], fm[k])
		}
		cd, fd := cur.Delta(k), fresh.Delta(k)
		if len(cd) != len(fd) {
			t.Fatalf("delta %d (%v): %d edges vs %d\n dyn: %v\n fresh: %v", k, cm[k], len(cd), len(fd), cd, fd)
		}
		for i := range cd {
			if cd[i] != fd[i] {
				t.Fatalf("delta %d edge %d: %v vs %v", k, i, cd[i], fd[i])
			}
		}
	}
	// Column distance arrays against plain BFS.
	snap := d.cur.Load()
	for r, root := range d.Landmarks() {
		want := bfs.Distances(g, root)
		for v := 0; v < n; v++ {
			got := snap.cols[r].dist[v]
			w := want[v]
			if w == bfs.Infinity {
				w = graph.InfDist
			}
			if got != w {
				t.Fatalf("dist (v=%d, rank=%d): %d vs %d", v, r, got, w)
			}
		}
	}
}

// checkQueries compares a handful of query answers against the oracle on
// the materialised graph.
func checkQueries(t *testing.T, d *Index, rng *rand.Rand, count int) {
	t.Helper()
	g := d.CurrentGraph().Materialize()
	n := g.NumVertices()
	for i := 0; i < count; i++ {
		u := graph.V(rng.Intn(n))
		v := graph.V(rng.Intn(n))
		got := d.Query(u, v)
		want := bfs.OracleSPG(g, u, v)
		if !got.Equal(want) {
			t.Fatalf("query (%d,%d): dist %d vs %d\n got: %v\n want: %v", u, v, got.Dist, want.Dist, got, want)
		}
	}
}

// randomMutableGraph builds a connected-ish random graph and returns it
// with a pool of candidate edges for inserts.
func randomMutableGraph(n int, extra int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.V(v), graph.V(rng.Intn(v)))
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.AddEdge(graph.V(u), graph.V(v))
		}
	}
	return b.MustBuild()
}

func pickLandmarks(n, k int, rng *rand.Rand) []graph.V {
	perm := rng.Perm(n)
	ls := make([]graph.V, k)
	for i := range ls {
		ls[i] = graph.V(perm[i])
	}
	return ls
}

// applyRandomOp applies one random insert or delete and returns whether
// the graph changed.
func applyRandomOp(t *testing.T, d *Index, rng *rand.Rand) bool {
	t.Helper()
	n := d.NumVertices()
	u := graph.V(rng.Intn(n))
	v := graph.V(rng.Intn(n))
	if u == v {
		return false
	}
	var changed bool
	var err error
	if d.HasEdge(u, v) {
		changed, err = d.RemoveEdge(u, v)
	} else {
		changed, err = d.AddEdge(u, v)
	}
	if err != nil {
		t.Fatalf("update {%d,%d}: %v", u, v, err)
	}
	return changed
}

// TestIncrementalMatchesFreshBuild is the heavyweight state check: after
// every single update the whole maintained state must equal a fresh
// static build. Runs across several graph shapes, landmark counts and
// repair budgets (budget 1 forces the re-BFS fallback on almost every
// deletion, budget MaxInt forces the incremental path).
func TestIncrementalMatchesFreshBuild(t *testing.T) {
	budgets := []int{1, 8, 1 << 30}
	for _, budget := range budgets {
		budget := budget
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(budget)*1000 + 7))
			for trial := 0; trial < 12; trial++ {
				n := 20 + rng.Intn(60)
				g := randomMutableGraph(n, n/2+rng.Intn(2*n), rng)
				R := 1 + rng.Intn(5)
				d, err := New(g, pickLandmarks(n, R, rng), Options{
					RepairBudget:    budget,
					CompactFraction: -1, // deterministic: no async rebuild
				})
				if err != nil {
					t.Fatal(err)
				}
				for op := 0; op < 25; op++ {
					if applyRandomOp(t, d, rng) {
						checkAgainstFresh(t, d)
					}
				}
				checkQueries(t, d, rng, 20)
			}
		})
	}
}

// TestDisconnection exercises updates that cut vertices off entirely and
// reconnect them.
func TestDisconnection(t *testing.T) {
	// Path 0-1-2-3-4 with a landmark at each end.
	g := graph.MustFromEdges(5, []graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 3}, {U: 3, W: 4}})
	d, err := New(g, []graph.V{0, 4}, Options{CompactFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	steps := [][3]int{ // u, v, insert(1)/delete(0)
		{1, 2, 0}, // split into {0,1} and {2,3,4}
		{2, 3, 0}, // isolate 2
		{0, 2, 1}, // reattach 2 to the left side
		{1, 2, 1},
		{2, 3, 1}, // fully reconnected, plus a chord
	}
	rng := rand.New(rand.NewSource(9))
	for _, s := range steps {
		var err error
		if s[2] == 1 {
			_, err = d.AddEdge(graph.V(s[0]), graph.V(s[1]))
		} else {
			_, err = d.RemoveEdge(graph.V(s[0]), graph.V(s[1]))
		}
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstFresh(t, d)
		checkQueries(t, d, rng, 10)
	}
}

// TestLandmarkIncidentUpdates hammers edges incident to landmarks, the
// trickiest case for σ and Δ maintenance.
func TestLandmarkIncidentUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		n := 16 + rng.Intn(20)
		g := randomMutableGraph(n, n, rng)
		R := 2 + rng.Intn(3)
		lands := pickLandmarks(n, R, rng)
		d, err := New(g, lands, Options{CompactFraction: -1})
		if err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 30; op++ {
			u := lands[rng.Intn(R)]
			v := graph.V(rng.Intn(n))
			if u == v {
				continue
			}
			var changed bool
			if d.HasEdge(u, v) {
				changed, err = d.RemoveEdge(u, v)
			} else {
				changed, err = d.AddEdge(u, v)
			}
			if err != nil {
				t.Fatal(err)
			}
			if changed {
				checkAgainstFresh(t, d)
			}
		}
	}
}

// TestIdempotentAndInvalidUpdates pins the no-op and validation
// behaviour.
func TestIdempotentAndInvalidUpdates(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 3}})
	d, err := New(g, []graph.V{1}, Options{CompactFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	e0 := d.Epoch()
	if ch, err := d.AddEdge(0, 1); err != nil || ch {
		t.Fatalf("re-adding existing edge: changed=%v err=%v", ch, err)
	}
	if ch, err := d.RemoveEdge(0, 3); err != nil || ch {
		t.Fatalf("removing absent edge: changed=%v err=%v", ch, err)
	}
	if d.Epoch() != e0 {
		t.Fatal("no-ops must not publish a new epoch")
	}
	if _, err := d.AddEdge(2, 2); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := d.AddEdge(-1, 2); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if ch, err := d.AddEdge(0, 3); err != nil || !ch {
		t.Fatalf("valid insert: changed=%v err=%v", ch, err)
	}
	if d.Epoch() != e0+1 {
		t.Fatal("applied update must advance the epoch")
	}
}

// TestCompaction checks that synchronous and automatic compaction
// preserve answers and reset overlay pressure.
func TestCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := randomMutableGraph(60, 80, rng)
	d, err := New(g, pickLandmarks(60, 4, rng), Options{CompactFraction: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < 120; op++ {
		applyRandomOp(t, d, rng)
	}
	d.WaitCompaction()
	if d.Stats().Compactions == 0 {
		t.Fatal("auto-compaction never triggered despite heavy churn")
	}
	checkAgainstFresh(t, d)
	checkQueries(t, d, rng, 25)

	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := d.CurrentGraph().Overridden(); got != 0 {
		t.Fatalf("overlay not compacted: %d overridden vertices", got)
	}
	checkAgainstFresh(t, d)
}

// TestSnapshotIsolation verifies a reader's snapshot is unaffected by
// later updates.
func TestSnapshotIsolation(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 3}})
	d, err := New(g, []graph.V{1}, Options{CompactFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	before := d.CurrentIndex()
	srBefore := core.NewSearcher(before)
	if _, err := d.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if got := srBefore.Query(0, 3); got.Dist != 3 {
		t.Fatalf("old snapshot changed: dist 0-3 = %d, want 3", got.Dist)
	}
	if got := d.Query(0, 3); got.Dist != graph.InfDist {
		t.Fatalf("new snapshot wrong: dist 0-3 = %d, want disconnected", got.Dist)
	}
}

// TestOverlay pins the copy-on-write graph view.
func TestOverlay(t *testing.T) {
	g := graph.MustFromEdges(5, []graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}, {U: 3, W: 4}})
	o := NewOverlay(g)
	o2 := o.WithEdge(2, 3)
	if o.HasEdge(2, 3) || !o2.HasEdge(2, 3) {
		t.Fatal("WithEdge leaked into the receiver")
	}
	if o.NumEdges() != 3 || o2.NumEdges() != 4 {
		t.Fatalf("edge counts: %d, %d", o.NumEdges(), o2.NumEdges())
	}
	o3 := o2.WithoutEdge(0, 1)
	if !o2.HasEdge(0, 1) || o3.HasEdge(0, 1) {
		t.Fatal("WithoutEdge leaked into the receiver")
	}
	m := o3.Materialize()
	if m.NumEdges() != 3 || !m.HasEdge(2, 3) || m.HasEdge(0, 1) {
		t.Fatal("materialised graph wrong")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Neighbour lists stay sorted through churn.
	rng := rand.New(rand.NewSource(5))
	cur := o
	for i := 0; i < 200; i++ {
		u, v := graph.V(rng.Intn(5)), graph.V(rng.Intn(5))
		if u == v {
			continue
		}
		if cur.HasEdge(u, v) {
			cur = cur.WithoutEdge(u, v)
		} else {
			cur = cur.WithEdge(u, v)
		}
	}
	if err := cur.Materialize().Validate(); err != nil {
		t.Fatal(err)
	}
}
