package dynamic

import (
	"qbs/internal/core"
	"qbs/internal/graph"
)

// Incremental Δ maintenance. Δ[k] for meta-edge k = (a, b) is the
// shortest-path graph between landmarks a and b, recovered from the two
// label columns alone: a vertex v participates iff
// lab_a(v) + lab_b(v) = σ(a, b). A meta-edge therefore only needs
// recomputation when (1) σ(a, b) changed (handled by snapshot
// realignment, which carries lists over only when the weight is
// unchanged), (2) some vertex's a- or b-label changed while the vertex
// participates before or after, or (3) the updated edge itself joins two
// participating vertices on consecutive levels, or attaches a
// participant to a landmark endpoint. Everything else is carried over
// from the previous snapshot by reference.

// dirtyDeltas returns the set of landmark-rank pairs (encoded a<<8|b
// with a < b) whose Δ list must be recomputed, given the update's label
// changes and the mutated edge {u, w}. oldLab resolves a vertex's label
// before the update (labels of unchanged columns are shared).
func dirtyDeltas(cols []*column, sigma []uint8, R int, landIdx []int16, changes []labelChange, u, w graph.V, oldLab func(v graph.V, rank int) uint8) map[int]struct{} {
	dirty := map[int]struct{}{}
	mark := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		dirty[a<<8|b] = struct{}{}
	}

	// (2) label changes at participating vertices.
	for _, ch := range changes {
		a := ch.rank
		for b := 0; b < R; b++ {
			if b == a {
				continue
			}
			s := sigma[a*R+b]
			if s == core.NoEntry {
				continue
			}
			lbOld := oldLab(ch.v, b)
			lbNew := cols[b].lab[ch.v]
			oldCand := ch.old != core.NoEntry && lbOld != core.NoEntry && int(ch.old)+int(lbOld) == int(s)
			newCand := ch.new != core.NoEntry && lbNew != core.NoEntry && int(ch.new)+int(lbNew) == int(s)
			if oldCand || newCand {
				mark(a, b)
			}
		}
	}

	// (3a) the mutated edge joining two participants on adjacent levels.
	for a := 0; a < R; a++ {
		lau, law := cols[a].lab[u], cols[a].lab[w]
		if lau == core.NoEntry || law == core.NoEntry {
			continue
		}
		if d := int(lau) - int(law); d != 1 && d != -1 {
			continue
		}
		for b := a + 1; b < R; b++ {
			s := sigma[a*R+b]
			if s == core.NoEntry {
				continue
			}
			lbu, lbw := cols[b].lab[u], cols[b].lab[w]
			if lbu == core.NoEntry || lbw == core.NoEntry {
				continue
			}
			if int(lau)+int(lbu) == int(s) && int(law)+int(lbw) == int(s) {
				mark(a, b)
			}
		}
	}

	// (3b) the mutated edge attaching a level-1 participant to a landmark
	// endpoint. In principle rule (2) already covers this — a level-1
	// label exists iff the direct landmark edge does, so mutating that
	// edge always produces a label change — but the O(R) check is kept as
	// cheap insurance against membership-invariant edge cases.
	markEndpoint := func(land, other graph.V) {
		ra := landIdx[land]
		if ra < 0 {
			return
		}
		a := int(ra)
		for b := 0; b < R; b++ {
			if b == a {
				continue
			}
			s := sigma[a*R+b]
			if s == core.NoEntry {
				continue
			}
			la, lb := cols[a].lab[other], cols[b].lab[other]
			if la == 1 && lb != core.NoEntry && int(la)+int(lb) == int(s) {
				mark(a, b)
			}
		}
	}
	markEndpoint(u, w)
	markEndpoint(w, u)
	return dirty
}

// computeDelta recomputes the Δ list of meta-edge (a, b) with weight
// sigma from the label columns, matching core's buildDelta output
// (normalised, sorted, deduplicated). The column scan is O(|V|), but it
// is paid only for dirty pairs, which most updates have none of (the
// endpoints must participate in a landmark-pair SPG); a localized patch
// driven by the label-change list is possible if this ever shows up in
// write latency profiles.
func computeDelta(g *Overlay, landmarks []graph.V, cols []*column, a, b int, sigma int32) []graph.Edge {
	va, vb := landmarks[a], landmarks[b]
	if sigma == 1 {
		return []graph.Edge{graph.Edge{U: va, W: vb}.Normalize()}
	}
	la, lb := cols[a].lab, cols[b].lab
	var edges []graph.Edge
	n := g.NumVertices()
	for vi := 0; vi < n; vi++ {
		da, db := la[vi], lb[vi]
		if da == core.NoEntry || db == core.NoEntry || int32(da)+int32(db) != sigma {
			continue
		}
		v := graph.V(vi)
		lv := int32(da)
		if lv == 1 {
			edges = append(edges, graph.Edge{U: va, W: v}.Normalize())
		}
		if lv == sigma-1 {
			edges = append(edges, graph.Edge{U: v, W: vb}.Normalize())
		}
		for _, x := range g.Neighbors(v) {
			xa, xb := la[x], lb[x]
			if xa != core.NoEntry && xb != core.NoEntry && int32(xa)+int32(xb) == sigma && int32(xa) == lv+1 {
				edges = append(edges, graph.Edge{U: v, W: x}.Normalize())
			}
		}
	}
	return core.DedupEdges(edges)
}
