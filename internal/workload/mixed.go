package workload

import (
	"math/rand"

	"qbs/internal/graph"
)

// Mixed read/write workloads for the dynamic index: a deterministic
// stream of queries interleaved with edge insertions and deletions. The
// generator tracks the evolving edge set so deletions always target an
// existing edge and insertions a missing one, keeping edge density
// roughly stationary over long streams — the steady-state churn shape of
// a live social or web graph.

// OpKind discriminates stream operations.
type OpKind uint8

const (
	// OpQuery asks for SPG(U, V).
	OpQuery OpKind = iota
	// OpInsert adds the edge {U, V} (absent when generated).
	OpInsert
	// OpDelete removes the edge {U, V} (present when generated).
	OpDelete
)

// Op is one operation of a mixed stream.
type Op struct {
	Kind OpKind
	U, V graph.V
}

// MixedOps generates count operations over g: writeRatio of them are
// edge mutations (split evenly between insertions and deletions, subject
// to availability), the rest uniform random query pairs. Deterministic
// in (g, count, writeRatio, seed).
func MixedOps(g *graph.Graph, count int, writeRatio float64, seed int64) []Op {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	ops := make([]Op, 0, count)
	if n < 2 {
		return ops
	}

	// Mutable edge-set mirror: slice for uniform picks, map for O(1)
	// membership and swap-removal.
	edges := g.Edges()
	at := make(map[graph.Edge]int, len(edges))
	for i, e := range edges {
		at[e] = i
	}
	removeAt := func(i int) {
		e := edges[i]
		last := len(edges) - 1
		edges[i] = edges[last]
		at[edges[i]] = i
		edges = edges[:last]
		delete(at, e)
	}
	addEdge := func(e graph.Edge) {
		at[e] = len(edges)
		edges = append(edges, e)
	}
	randomPair := func() (graph.V, graph.V) {
		for {
			u := graph.V(rng.Intn(n))
			v := graph.V(rng.Intn(n))
			if u != v {
				return u, v
			}
		}
	}
	randomMissing := func() (graph.Edge, bool) {
		for tries := 0; tries < 64; tries++ {
			u, v := randomPair()
			e := graph.Edge{U: u, W: v}.Normalize()
			if _, dup := at[e]; !dup {
				return e, true
			}
		}
		return graph.Edge{}, false // near-complete graph
	}

	for len(ops) < count {
		if rng.Float64() >= writeRatio {
			u, v := randomPair()
			ops = append(ops, Op{Kind: OpQuery, U: u, V: v})
			continue
		}
		wantDelete := rng.Intn(2) == 0
		if wantDelete && len(edges) > 0 {
			i := rng.Intn(len(edges))
			e := edges[i]
			removeAt(i)
			ops = append(ops, Op{Kind: OpDelete, U: e.U, V: e.W})
		} else if e, ok := randomMissing(); ok {
			addEdge(e)
			ops = append(ops, Op{Kind: OpInsert, U: e.U, V: e.W})
		} else if len(edges) > 0 {
			i := rng.Intn(len(edges))
			e := edges[i]
			removeAt(i)
			ops = append(ops, Op{Kind: OpDelete, U: e.U, V: e.W})
		} else {
			u, v := randomPair()
			ops = append(ops, Op{Kind: OpQuery, U: u, V: v})
		}
	}
	return ops
}

// Mutations generates a write-only stream — MixedOps at writeRatio 1 —
// the shape a replication primary absorbs while replicas carry the
// reads.
func Mutations(g *graph.Graph, count int, seed int64) []Op {
	return MixedOps(g, count, 1, seed)
}

// CountKinds tallies a stream by operation kind.
func CountKinds(ops []Op) (queries, inserts, deletes int) {
	for _, op := range ops {
		switch op.Kind {
		case OpQuery:
			queries++
		case OpInsert:
			inserts++
		case OpDelete:
			deletes++
		}
	}
	return
}
