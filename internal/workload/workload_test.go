package workload

import (
	"testing"

	"qbs/internal/graph"
)

func TestSamplePairsDeterministicDistinct(t *testing.T) {
	g := graph.Cycle(50)
	a := SamplePairs(g, 100, 7)
	b := SamplePairs(g, 100, 7)
	if len(a) != 100 {
		t.Fatalf("got %d pairs", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
		if a[i].U == a[i].V {
			t.Fatal("self pair sampled")
		}
	}
	c := SamplePairs(g, 100, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestSamplePairsTinyGraph(t *testing.T) {
	if got := SamplePairs(graph.Path(1), 10, 1); len(got) != 0 {
		t.Fatal("single-vertex graph must yield no pairs")
	}
}

func TestSampleConnectedPairs(t *testing.T) {
	g := graph.MustFromEdges(6, []graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}, {U: 3, W: 4}, {U: 4, W: 5}})
	labels, _ := g.ConnectedComponents()
	for _, p := range SampleConnectedPairs(g, 50, 3) {
		if labels[p.U] != labels[p.V] {
			t.Fatalf("pair %v crosses components", p)
		}
	}
}

func TestMeasureDistancesOnPath(t *testing.T) {
	g := graph.Path(5)
	pairs := []Pair{{0, 4}, {0, 1}, {1, 3}, {0, 4}}
	dd := MeasureDistances(g, pairs)
	if dd.Max != 4 {
		t.Fatalf("max = %d", dd.Max)
	}
	if dd.Counts[4] != 2 || dd.Counts[1] != 1 || dd.Counts[2] != 1 {
		t.Fatalf("counts = %v", dd.Counts)
	}
	if dd.Fraction[4] != 0.5 {
		t.Fatalf("fraction[4] = %f", dd.Fraction[4])
	}
	wantMean := (4.0 + 1 + 2 + 4) / 4
	if dd.Mean != wantMean {
		t.Fatalf("mean = %f want %f", dd.Mean, wantMean)
	}
}

func TestMeasureDistancesUnreachable(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, W: 1}, {U: 2, W: 3}})
	dd := MeasureDistances(g, []Pair{{0, 2}, {0, 1}})
	if dd.Unreachable != 1 {
		t.Fatalf("unreachable = %d", dd.Unreachable)
	}
}

func TestApproxAvgDistance(t *testing.T) {
	// Exact on a complete graph: every pair at distance 1.
	g := graph.Complete(20)
	if got := ApproxAvgDistance(g, 20, 1); got != 1 {
		t.Fatalf("avg dist on K20 = %f", got)
	}
	// Path graph: average distance from all sources = (n+1)/3 for large n.
	p := graph.Path(100)
	got := ApproxAvgDistance(p, 100, 1)
	if got < 30 || got > 37 {
		t.Fatalf("path avg dist = %f", got)
	}
}

func TestMixedOps(t *testing.T) {
	g := graph.ErdosRenyi(200, 600, 11)
	ops := MixedOps(g, 2000, 0.3, 42)
	if len(ops) != 2000 {
		t.Fatalf("got %d ops", len(ops))
	}
	q, ins, del := CountKinds(ops)
	if q == 0 || ins == 0 || del == 0 {
		t.Fatalf("kinds: q=%d ins=%d del=%d", q, ins, del)
	}
	writes := ins + del
	if ratio := float64(writes) / float64(len(ops)); ratio < 0.2 || ratio > 0.4 {
		t.Fatalf("write ratio %.2f far from requested 0.3", ratio)
	}
	// Replay against a mirror: every delete must hit an existing edge,
	// every insert a missing one.
	edges := map[graph.Edge]bool{}
	for _, e := range g.Edges() {
		edges[e] = true
	}
	for i, op := range ops {
		e := graph.Edge{U: op.U, W: op.V}.Normalize()
		switch op.Kind {
		case OpInsert:
			if edges[e] {
				t.Fatalf("op %d: insert of existing edge %v", i, e)
			}
			edges[e] = true
		case OpDelete:
			if !edges[e] {
				t.Fatalf("op %d: delete of missing edge %v", i, e)
			}
			delete(edges, e)
		case OpQuery:
			if op.U == op.V {
				t.Fatalf("op %d: degenerate query pair", i)
			}
		}
	}
	// Determinism.
	again := MixedOps(g, 2000, 0.3, 42)
	for i := range ops {
		if ops[i] != again[i] {
			t.Fatalf("op %d differs between runs", i)
		}
	}
}
