package workload

import "testing"

func TestZipfPairsSkew(t *testing.T) {
	const n, count = 10000, 20000
	pairs := ZipfPairs(n, count, 1.2, 7)
	if len(pairs) != count {
		t.Fatalf("len = %d, want %d", len(pairs), count)
	}
	// Skew sanity: the hottest 1% of the ID space must absorb far more
	// than its uniform share of endpoints, and the tail must still be
	// touched (it is a distribution, not a constant).
	hot, tail := 0, 0
	for _, p := range pairs {
		for _, v := range []int{int(p.U), int(p.V)} {
			if v < 0 || v >= n {
				t.Fatalf("endpoint %d out of range [0,%d)", v, n)
			}
			if v < n/100 {
				hot++
			}
			if v > n/2 {
				tail++
			}
		}
		if p.U == p.V {
			t.Fatalf("degenerate pair %v", p)
		}
	}
	total := 2 * count
	if frac := float64(hot) / float64(total); frac < 0.10 {
		t.Fatalf("hottest 1%% of IDs got %.1f%% of endpoints; want >=10%% under Zipf skew", 100*frac)
	}
	if tail == 0 {
		t.Fatal("upper half of the ID space never sampled; distribution degenerate")
	}

	// Deterministic in the seed, different across seeds.
	again := ZipfPairs(n, count, 1.2, 7)
	for i := range pairs {
		if pairs[i] != again[i] {
			t.Fatalf("pair %d differs between identical runs", i)
		}
	}
	other := ZipfPairs(n, count, 1.2, 8)
	same := 0
	for i := range pairs {
		if pairs[i] == other[i] {
			same++
		}
	}
	if same == count {
		t.Fatal("seed has no effect")
	}

	if got := ZipfPairs(1, 10, 1.2, 1); got != nil {
		t.Fatalf("n=1 should yield nil, got %v", got)
	}
}
