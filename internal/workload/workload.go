// Package workload generates query workloads and measures their
// structural properties, mirroring the paper's evaluation setup (§6.1):
// uniformly sampled vertex pairs and their distance distribution
// (Figure 7).
package workload

import (
	"math/rand"

	"qbs/internal/bfs"
	"qbs/internal/graph"
)

// Pair is one query pair.
type Pair struct {
	U, V graph.V
}

// SamplePairs draws count pairs of vertices uniformly at random (with
// replacement over pairs, u ≠ v), deterministically for a seed. This is
// the paper's workload: 10,000 random pairs per dataset.
func SamplePairs(g *graph.Graph, count int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	pairs := make([]Pair, 0, count)
	if n < 2 {
		return pairs
	}
	for len(pairs) < count {
		u := graph.V(rng.Intn(n))
		v := graph.V(rng.Intn(n))
		if u != v {
			pairs = append(pairs, Pair{u, v})
		}
	}
	return pairs
}

// SampleConnectedPairs draws count pairs from the same connected
// component, for workloads where disconnected pairs are noise.
func SampleConnectedPairs(g *graph.Graph, count int, seed int64) []Pair {
	labels, _ := g.ConnectedComponents()
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	pairs := make([]Pair, 0, count)
	if n < 2 {
		return pairs
	}
	for attempts := 0; len(pairs) < count && attempts < 1000*count; attempts++ {
		u := graph.V(rng.Intn(n))
		v := graph.V(rng.Intn(n))
		if u != v && labels[u] == labels[v] {
			pairs = append(pairs, Pair{u, v})
		}
	}
	return pairs
}

// DistanceDistribution is the Figure 7 histogram: Fraction[d] is the
// fraction of sampled pairs at distance d; Unreachable counts
// disconnected pairs; Mean is the average finite distance.
type DistanceDistribution struct {
	Fraction    []float64
	Counts      []int
	Unreachable int
	Mean        float64
	Max         int32
}

// MeasureDistances BFSes each pair (grouped by source to amortise) and
// returns the distance distribution.
func MeasureDistances(g *graph.Graph, pairs []Pair) DistanceDistribution {
	bySource := make(map[graph.V][]graph.V)
	for _, p := range pairs {
		bySource[p.U] = append(bySource[p.U], p.V)
	}
	var dd DistanceDistribution
	counts := make(map[int32]int)
	var sum, finite int64
	for u, vs := range bySource {
		dist := bfs.Distances(g, u)
		for _, v := range vs {
			d := dist[v]
			if d == bfs.Infinity {
				dd.Unreachable++
				continue
			}
			counts[d]++
			sum += int64(d)
			finite++
			if d > dd.Max {
				dd.Max = d
			}
		}
	}
	dd.Counts = make([]int, dd.Max+1)
	dd.Fraction = make([]float64, dd.Max+1)
	for d, c := range counts {
		dd.Counts[d] = c
	}
	total := len(pairs)
	if total > 0 {
		for d := range dd.Fraction {
			dd.Fraction[d] = float64(dd.Counts[d]) / float64(total)
		}
	}
	if finite > 0 {
		dd.Mean = float64(sum) / float64(finite)
	}
	return dd
}

// ApproxAvgDistance estimates the average pairwise distance from a
// sample of sources (the "avg dist" column of Table 1).
func ApproxAvgDistance(g *graph.Graph, sources int, seed int64) float64 {
	n := g.NumVertices()
	if n < 2 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	if sources > n {
		sources = n
	}
	var sum, count int64
	for i := 0; i < sources; i++ {
		u := graph.V(rng.Intn(n))
		dist := bfs.Distances(g, u)
		for v, d := range dist {
			if d != bfs.Infinity && graph.V(v) != u {
				sum += int64(d)
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}
