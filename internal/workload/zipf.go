package workload

import (
	"math/rand"

	"qbs/internal/graph"
)

// Zipfian query pairs: production read traffic is rarely uniform — a
// few hot vertices (celebrities, hub pages) dominate, and a router or
// cache behaves very differently under that skew than under the uniform
// pairs of the paper's §6.1 setup. ZipfPairs samples both endpoints
// from a Zipf distribution over the vertex IDs, so low-numbered
// vertices are hot and the tail is long.

// ZipfPairs generates count query pairs over a graph with n vertices,
// endpoint IDs Zipf-distributed with exponent s > 1 (larger = more
// skewed; 1.1 is a mild, web-like skew). Self-pairs are re-rolled so
// every pair exercises a real traversal. Deterministic in
// (n, count, s, seed).
func ZipfPairs(n, count int, s float64, seed int64) []Pair {
	if n < 2 || count <= 0 {
		return nil
	}
	if s <= 1 {
		s = 1.1
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	pairs := make([]Pair, 0, count)
	for len(pairs) < count {
		u, v := graph.V(z.Uint64()), graph.V(z.Uint64())
		if u == v {
			continue
		}
		pairs = append(pairs, Pair{U: u, V: v})
	}
	return pairs
}
