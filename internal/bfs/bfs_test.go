package bfs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qbs/internal/graph"
)

func TestDistancesOnPath(t *testing.T) {
	g := graph.Path(6)
	d := Distances(g, 0)
	for i := 0; i < 6; i++ {
		if d[i] != int32(i) {
			t.Fatalf("d[%d] = %d", i, d[i])
		}
	}
}

func TestDistanceEarlyExitMatchesFull(t *testing.T) {
	g := graph.ErdosRenyi(300, 700, 5)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		u := graph.V(rng.Intn(300))
		v := graph.V(rng.Intn(300))
		full := Distances(g, u)[v]
		if got := Distance(g, u, v); got != full {
			t.Fatalf("Distance(%d,%d)=%d, full BFS %d", u, v, got, full)
		}
	}
}

func TestDistancesDisconnected(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, W: 1}})
	d := Distances(g, 0)
	if d[2] != Infinity || d[3] != Infinity {
		t.Fatal("unreachable vertices must be Infinity")
	}
	if Distance(g, 0, 3) != Infinity {
		t.Fatal("Distance must be Infinity")
	}
}

func TestEccentricity(t *testing.T) {
	if e := Eccentricity(graph.Path(7), 0); e != 6 {
		t.Fatalf("path ecc = %d", e)
	}
	if e := Eccentricity(graph.Star(9), 0); e != 1 {
		t.Fatalf("star centre ecc = %d", e)
	}
}

func TestWorkspaceEpochReuse(t *testing.T) {
	ws := NewWorkspace(10)
	ws.Reset()
	ws.SetDist(3, 7)
	if ws.Dist(3) != 7 || ws.Dist(4) != Infinity {
		t.Fatal("workspace basic ops")
	}
	ws.Reset()
	if ws.Seen(3) {
		t.Fatal("reset must invalidate")
	}
	// Epoch wraparound internals are exercised in traverse's own tests,
	// where the Workspace now lives.
}

func TestOracleSPGPath(t *testing.T) {
	g := graph.Path(5)
	s := OracleSPG(g, 0, 4)
	if s.Dist != 4 || s.NumEdges() != 4 {
		t.Fatalf("path SPG: dist=%d edges=%d", s.Dist, s.NumEdges())
	}
}

func TestOracleSPGMultiplePaths(t *testing.T) {
	// 4-cycle: two shortest paths between opposite corners.
	g := graph.Cycle(4)
	s := OracleSPG(g, 0, 2)
	if s.Dist != 2 || s.NumEdges() != 4 {
		t.Fatalf("cycle SPG: dist=%d edges=%d", s.Dist, s.NumEdges())
	}
}

func TestOracleSPGExcludesNonShortestEdges(t *testing.T) {
	// Triangle plus pendant: SPG(0,1) is just the edge, not the detour.
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, W: 1}, {U: 1, W: 2}, {U: 2, W: 0}})
	s := OracleSPG(g, 0, 1)
	if s.NumEdges() != 1 {
		t.Fatalf("triangle SPG(0,1) edges=%d, want 1", s.NumEdges())
	}
}

func TestBiBFSMatchesOracle(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(12),
		graph.Cycle(11),
		graph.Star(15),
		graph.Grid(5, 6),
		graph.Complete(7),
		graph.ErdosRenyi(150, 350, 3),
		graph.BarabasiAlbert(150, 3, 4),
		graph.WattsStrogatz(120, 4, 0.2, 5),
	}
	for gi, g := range graphs {
		b := NewBidirectional(g)
		rng := rand.New(rand.NewSource(int64(gi)))
		n := g.NumVertices()
		for i := 0; i < 80; i++ {
			u := graph.V(rng.Intn(n))
			v := graph.V(rng.Intn(n))
			got, _ := b.Query(u, v)
			want := OracleSPG(g, u, v)
			if !got.Equal(want) {
				t.Fatalf("graph %d: BiBFS(%d,%d) = %v, want %v", gi, u, v, got, want)
			}
		}
	}
}

func TestBiBFSDisconnected(t *testing.T) {
	g := graph.MustFromEdges(6, []graph.Edge{{U: 0, W: 1}, {U: 2, W: 3}, {U: 4, W: 5}})
	s := BiBFS(g, 0, 5)
	if s.Dist != graph.InfDist || s.NumEdges() != 0 {
		t.Fatalf("disconnected: dist=%d edges=%d", s.Dist, s.NumEdges())
	}
}

func TestBiBFSTrivialAndAdjacent(t *testing.T) {
	g := graph.Complete(5)
	if s := BiBFS(g, 2, 2); s.Dist != 0 || s.NumEdges() != 0 {
		t.Fatal("trivial query wrong")
	}
	if s := BiBFS(g, 0, 1); s.Dist != 1 || s.NumEdges() != 1 {
		t.Fatal("adjacent query wrong")
	}
}

func TestBiBFSStatsCounters(t *testing.T) {
	g := graph.ErdosRenyi(200, 500, 9)
	b := NewBidirectional(g)
	_, st := b.Query(0, graph.V(g.NumVertices()-1))
	if st.ArcsScanned <= 0 || st.VerticesVisited <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if st.ArcsScanned > int64(g.NumArcs())*2 {
		t.Fatalf("arcs scanned %d exceeds plausible bound", st.ArcsScanned)
	}
}

func TestBiBFSQuickProperty(t *testing.T) {
	check := func(seed int64, nRaw, mRaw uint8) bool {
		n := 5 + int(nRaw)%60
		m := int(mRaw) % (3 * n)
		g := graph.ErdosRenyi(n, m, seed)
		b := NewBidirectional(g)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 10; i++ {
			u := graph.V(rng.Intn(n))
			v := graph.V(rng.Intn(n))
			got, _ := b.Query(u, v)
			if !got.Equal(OracleSPG(g, u, v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractPathsFromMidpoint(t *testing.T) {
	// Distances from 0 on a path; extracting from the far end must
	// recover exactly the path edges.
	g := graph.Path(6)
	ws := NewWorkspace(6)
	ws.Reset()
	for i := 0; i < 6; i++ {
		ws.SetDist(graph.V(i), int32(i))
	}
	spg := graph.NewSPG(0, 5)
	spg.Dist = 5
	mark := NewWorkspace(6)
	arcs := ExtractPaths(g, spg, []graph.V{5}, ws, mark)
	if spg.NumEdges() != 5 {
		t.Fatalf("extracted %d edges, want 5", spg.NumEdges())
	}
	if arcs <= 0 {
		t.Fatal("arc counter not incremented")
	}
}
