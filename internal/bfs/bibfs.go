package bfs

import (
	"qbs/internal/graph"
	"qbs/internal/traverse"
)

// Bidirectional BFS baseline (the paper's search-based baseline Bi-BFS,
// §6.1): a forward search from u and a backward search from v expand
// alternately, always growing the smaller visited set, until the
// frontiers meet; a reverse search then extracts the union of all
// shortest paths.
//
// Because searches expand whole levels and the meeting check runs after
// every level, the first non-empty intersection appears exactly when
// d_u + d_v = d_G(u, v), and the meeting vertices with
// depth_u(w) + depth_v(w) = d are precisely the shortest-path vertices at
// the meeting cut.

// SearchStats reports work counters for a query, used by the §6.5
// traversal ablation (edges traversed by Bi-BFS vs QbS).
type SearchStats struct {
	ArcsScanned     int64 // adjacency entries examined
	VerticesVisited int64 // vertices assigned a depth
}

// BiBFS answers SPG(u, v) with a bidirectional BFS over the full graph.
// It allocates fresh state per call; use a Bidirectional searcher for
// repeated queries.
func BiBFS(g graph.Adjacency, u, v graph.V) *graph.SPG {
	s := NewBidirectional(g)
	spg, _ := s.Query(u, v)
	return spg
}

// Bidirectional is a reusable bidirectional-BFS searcher over a fixed
// graph. Each side expands through a direction-optimizing
// traverse.Expander, so the dense middle levels of small-world graphs
// run bottom-up. Not safe for concurrent use.
type Bidirectional struct {
	g              graph.Adjacency
	deg            []int32 // cached degrees when g is a static CSR graph
	fwd, bwd       *Workspace
	fwdExp, bwdExp *traverse.Expander
	// frontier storage, reused across queries
	frontFwd, frontBwd []graph.V
	nextBuf            []graph.V
	meet               []graph.V
	ext                *Extractor
}

// NewBidirectional creates a searcher for g.
func NewBidirectional(g graph.Adjacency) *Bidirectional {
	n := g.NumVertices()
	b := &Bidirectional{
		g:      g,
		fwd:    NewWorkspace(n),
		bwd:    NewWorkspace(n),
		fwdExp: traverse.NewExpander(n),
		bwdExp: traverse.NewExpander(n),
		ext:    NewExtractor(n),
	}
	if cg, ok := g.(*graph.Graph); ok {
		b.deg = cg.Degrees()
	}
	return b
}

// SetParallelism runs both directions' level expansions on p traverse
// pool workers when a level clears the size threshold; results are
// bit-identical at every setting. 0 (the default) stays sequential.
func (b *Bidirectional) SetParallelism(p int) {
	b.fwdExp.Parallelism = p
	b.bwdExp.Parallelism = p
}

// Query computes SPG(u, v) and work counters.
func (b *Bidirectional) Query(u, v graph.V) (*graph.SPG, SearchStats) {
	var stats SearchStats
	spg := graph.NewSPG(u, v)
	if u == v {
		spg.Dist = 0
		return spg, stats
	}
	g := b.g
	b.fwd.Reset()
	b.bwd.Reset()
	b.fwd.SetDist(u, 0)
	b.bwd.SetDist(v, 0)
	b.fwdExp.Begin(g, b.deg)
	b.bwdExp.Begin(g, b.deg)
	stats.VerticesVisited = 2
	fs := append(b.frontFwd[:0], u)
	bs := append(b.frontBwd[:0], v)
	var du, dv int32
	sizeFwd, sizeBwd := 1, 1 // visited-set sizes drive side selection
	meet := b.meet[:0]

	for len(fs) > 0 && len(bs) > 0 {
		// Expand the side with the smaller visited set.
		if sizeFwd <= sizeBwd {
			fs = b.expand(b.fwdExp, fs, b.fwd, du, &stats)
			du++
			sizeFwd += len(fs)
			meet = b.collectMeeting(fs, b.bwd, meet)
		} else {
			bs = b.expand(b.bwdExp, bs, b.bwd, dv, &stats)
			dv++
			sizeBwd += len(bs)
			meet = b.collectMeeting(bs, b.fwd, meet)
		}
		if len(meet) > 0 {
			break
		}
	}
	b.frontFwd, b.frontBwd, b.meet = fs, bs, meet
	if len(meet) == 0 {
		return spg, stats // disconnected
	}
	d := du + dv
	spg.Dist = d
	// Keep only true meeting vertices on shortest paths.
	cut := meet[:0]
	for _, w := range meet {
		if b.fwd.Dist(w)+b.bwd.Dist(w) == d {
			cut = append(cut, w)
		}
	}
	stats.ArcsScanned += b.ext.Extract(g, spg, cut, b.fwd)
	stats.ArcsScanned += b.ext.Extract(g, spg, cut, b.bwd)
	return spg, stats
}

// expand grows one BFS level: every vertex in frontier has depth d; its
// unseen neighbours get depth d+1 and form the next frontier. The
// expander picks top-down or bottom-up per level.
func (b *Bidirectional) expand(exp *traverse.Expander, frontier []graph.V, ws *Workspace, d int32, stats *SearchStats) []graph.V {
	next, arcs := exp.Expand(ws, frontier, d, b.nextBuf[:0])
	stats.ArcsScanned += arcs
	stats.VerticesVisited += int64(len(next))
	b.nextBuf = frontier[:0] // recycle the old frontier's backing array
	return next
}

// collectMeeting appends frontier vertices already seen by the other
// side's workspace.
func (b *Bidirectional) collectMeeting(frontier []graph.V, other *Workspace, meet []graph.V) []graph.V {
	for _, w := range frontier {
		if other.Seen(w) {
			meet = append(meet, w)
		}
	}
	return meet
}

// Extractor performs the paper's reverse search with reusable buffers:
// starting from the meeting vertices, walk depth levels downward in ws
// (depth decreases by exactly 1 per step), adding every DAG edge to the
// SPG.
//
// It is shared by the Bi-BFS baseline and the QbS guided search (where
// ws holds depths over the sparsified graph G⁻ — landmarks carry a
// negative sentinel depth and are skipped automatically).
type Extractor struct {
	mark      *Workspace
	cur, next []graph.V
}

// NewExtractor creates an extractor for graphs with n vertices.
func NewExtractor(n int) *Extractor {
	return &Extractor{mark: NewWorkspace(n)}
}

// Extract runs the reverse search from the given vertices and returns
// the number of adjacency entries scanned (for traversal ablations).
func (e *Extractor) Extract(g graph.Adjacency, spg *graph.SPG, from []graph.V, ws *Workspace) int64 {
	e.mark.Reset()
	var arcs int64
	cur := e.cur[:0]
	for _, w := range from {
		if !e.mark.Seen(w) {
			e.mark.SetDist(w, 0)
			cur = append(cur, w)
		}
	}
	next := e.next[:0]
	for len(cur) > 0 {
		next = next[:0]
		for _, x := range cur {
			dx := ws.Dist(x)
			if dx <= 0 {
				continue
			}
			for _, y := range g.Neighbors(x) {
				arcs++
				if ws.Seen(y) && ws.Dist(y) == dx-1 {
					spg.AddEdge(x, y)
					if !e.mark.Seen(y) {
						e.mark.SetDist(y, 0)
						next = append(next, y)
					}
				}
			}
		}
		cur, next = next, cur
	}
	e.cur, e.next = cur[:0], next[:0]
	return arcs
}

// ExtractPaths is the one-shot form of Extractor.Extract; mark is used
// as the dedup scratch set.
func ExtractPaths(g graph.Adjacency, spg *graph.SPG, from []graph.V, ws *Workspace, mark *Workspace) int64 {
	e := &Extractor{mark: mark}
	return e.Extract(g, spg, from, ws)
}
