package bfs

import "qbs/internal/graph"

// Directed BFS kernels and baselines, mirroring the undirected ones for
// package dcore (the paper's directed extension).

// DiDistancesFrom runs a forward BFS over out-arcs from source.
func DiDistancesFrom(g *graph.DiGraph, source graph.V) []int32 {
	return diDistances(g, source, true)
}

// DiDistancesTo runs a backward BFS over in-arcs toward target: the
// result is d(v → target) for every v.
func DiDistancesTo(g *graph.DiGraph, target graph.V) []int32 {
	return diDistances(g, target, false)
}

func diDistances(g *graph.DiGraph, root graph.V, forward bool) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[root] = 0
	queue := make([]graph.V, 1, 1024)
	queue[0] = root
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		var ns []graph.V
		if forward {
			ns = g.Out(u)
		} else {
			ns = g.In(u)
		}
		for _, w := range ns {
			if dist[w] == Infinity {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// OracleDiSPG computes the directed shortest path graph by brute force:
// forward distances from u, backward distances to v, and the arc filter
// d(u,x) + 1 + d(y,v) = d(u,v). The directed ground truth for tests.
func OracleDiSPG(g *graph.DiGraph, u, v graph.V) *graph.DiSPG {
	s := graph.NewDiSPG(u, v)
	if u == v {
		s.Dist = 0
		return s
	}
	from := DiDistancesFrom(g, u)
	if from[v] == Infinity {
		return s
	}
	to := DiDistancesTo(g, v)
	d := from[v]
	s.Dist = d
	for x := graph.V(0); x < graph.V(g.NumVertices()); x++ {
		if from[x] == Infinity || from[x] >= d {
			continue
		}
		for _, y := range g.Out(x) {
			if to[y] != Infinity && from[x]+1+to[y] == d {
				s.AddArc(x, y)
			}
		}
	}
	return s
}

// DiBidirectional is the directed bidirectional-BFS baseline: a forward
// search from u over out-arcs and a backward search from v over in-arcs
// expand alternately until they meet; the reverse extraction walks both
// depth structures. Reusable across queries; not safe for concurrent
// use.
type DiBidirectional struct {
	g        *graph.DiGraph
	fwd, bwd *Workspace
	ext      *DiExtractor
	meet     []graph.V
}

// NewDiBidirectional creates a searcher for g.
func NewDiBidirectional(g *graph.DiGraph) *DiBidirectional {
	n := g.NumVertices()
	return &DiBidirectional{
		g:   g,
		fwd: NewWorkspace(n),
		bwd: NewWorkspace(n),
		ext: NewDiExtractor(n),
	}
}

// Query computes DiSPG(u, v) and work counters.
func (b *DiBidirectional) Query(u, v graph.V) (*graph.DiSPG, SearchStats) {
	var stats SearchStats
	spg := graph.NewDiSPG(u, v)
	if u == v {
		spg.Dist = 0
		return spg, stats
	}
	g := b.g
	b.fwd.Reset()
	b.bwd.Reset()
	b.fwd.SetDist(u, 0)
	b.bwd.SetDist(v, 0)
	fs := []graph.V{u}
	bs := []graph.V{v}
	var du, dv int32
	sizeF, sizeB := 1, 1
	meet := b.meet[:0]
	defer func() { b.meet = meet[:0] }()

	for len(fs) > 0 && len(bs) > 0 {
		if sizeF <= sizeB {
			fs = b.expand(fs, b.fwd, du, true, &stats)
			du++
			sizeF += len(fs)
			for _, w := range fs {
				if b.bwd.Seen(w) {
					meet = append(meet, w)
				}
			}
		} else {
			bs = b.expand(bs, b.bwd, dv, false, &stats)
			dv++
			sizeB += len(bs)
			for _, w := range bs {
				if b.fwd.Seen(w) {
					meet = append(meet, w)
				}
			}
		}
		if len(meet) > 0 {
			break
		}
	}
	if len(meet) == 0 {
		return spg, stats
	}
	d := du + dv
	spg.Dist = d
	cut := meet[:0]
	for _, w := range meet {
		if b.fwd.Dist(w)+b.bwd.Dist(w) == d {
			cut = append(cut, w)
		}
	}
	stats.ArcsScanned += b.ext.Extract(g, spg, cut, b.fwd, true)
	stats.ArcsScanned += b.ext.Extract(g, spg, cut, b.bwd, false)
	return spg, stats
}

func (b *DiBidirectional) expand(frontier []graph.V, ws *Workspace, d int32, forward bool, stats *SearchStats) []graph.V {
	var next []graph.V
	for _, x := range frontier {
		var ns []graph.V
		if forward {
			ns = b.g.Out(x)
		} else {
			ns = b.g.In(x)
		}
		stats.ArcsScanned += int64(len(ns))
		for _, y := range ns {
			if !ws.Seen(y) {
				ws.SetDist(y, d+1)
				stats.VerticesVisited++
				next = append(next, y)
			}
		}
	}
	return next
}

// DiExtractor performs the directed reverse search with reusable
// buffers: starting from the given vertices, walk depth levels downward
// in ws toward the search root. For the forward side (towardSource =
// true) predecessors are in-neighbours and extracted arcs point pred→x;
// for the backward side they are out-neighbours and arcs point x→succ.
// Shared by the Di-Bi-BFS baseline and the directed guided search; a
// warmed extractor keeps the query path allocation-free.
type DiExtractor struct {
	mark      *Workspace
	cur, next []graph.V
}

// NewDiExtractor creates an extractor for digraphs with n vertices.
func NewDiExtractor(n int) *DiExtractor {
	return &DiExtractor{mark: NewWorkspace(n)}
}

// Extract runs the directed reverse search from the given vertices and
// returns the number of adjacency entries scanned.
func (e *DiExtractor) Extract(g *graph.DiGraph, spg *graph.DiSPG, from []graph.V, ws *Workspace, towardSource bool) int64 {
	e.mark.Reset()
	var arcs int64
	cur := e.cur[:0]
	for _, w := range from {
		if !e.mark.Seen(w) {
			e.mark.SetDist(w, 0)
			cur = append(cur, w)
		}
	}
	next := e.next[:0]
	for len(cur) > 0 {
		next = next[:0]
		for _, x := range cur {
			dx := ws.Dist(x)
			if dx <= 0 {
				continue
			}
			var ns []graph.V
			if towardSource {
				ns = g.In(x)
			} else {
				ns = g.Out(x)
			}
			for _, y := range ns {
				arcs++
				if ws.Seen(y) && ws.Dist(y) == dx-1 {
					if towardSource {
						spg.AddArc(y, x)
					} else {
						spg.AddArc(x, y)
					}
					if !e.mark.Seen(y) {
						e.mark.SetDist(y, 0)
						next = append(next, y)
					}
				}
			}
		}
		cur, next = next, cur
	}
	e.cur, e.next = cur[:0], next[:0]
	return arcs
}

// ExtractDiPaths is the one-shot form of DiExtractor.Extract; mark is
// used as the dedup scratch set.
func ExtractDiPaths(g *graph.DiGraph, spg *graph.DiSPG, from []graph.V, ws *Workspace, mark *Workspace, towardSource bool) int64 {
	e := &DiExtractor{mark: mark}
	return e.Extract(g, spg, from, ws, towardSource)
}
