// Package bfs provides the breadth-first-search kernels shared by the
// QbS index and the baselines: single-source distance BFS, a reusable
// epoch-stamped workspace that avoids per-query O(|V|) clearing, the
// bidirectional-BFS shortest-path-graph baseline from the paper (Bi-BFS,
// §6.1), and a brute-force shortest-path-graph oracle used as ground
// truth in tests.
package bfs

import (
	"math"

	"qbs/internal/graph"
)

// Infinity marks an unreached vertex in distance arrays.
const Infinity = int32(math.MaxInt32)

// Distances runs a full BFS from source and returns the distance array
// (Infinity for unreachable vertices). It allocates; query paths use
// Workspace instead.
func Distances(g graph.Adjacency, source graph.V) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[source] = 0
	queue := make([]graph.V, 1, n)
	queue[0] = source
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, w := range g.Neighbors(u) {
			if dist[w] == Infinity {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Distance returns d_G(u, v), or Infinity if disconnected. It early-exits
// once v is reached.
func Distance(g graph.Adjacency, u, v graph.V) int32 {
	if u == v {
		return 0
	}
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[u] = 0
	queue := make([]graph.V, 1, 1024)
	queue[0] = u
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		dx := dist[x]
		for _, w := range g.Neighbors(x) {
			if dist[w] == Infinity {
				if w == v {
					return dx + 1
				}
				dist[w] = dx + 1
				queue = append(queue, w)
			}
		}
	}
	return Infinity
}

// Eccentricity returns the maximum finite distance from v.
func Eccentricity(g graph.Adjacency, v graph.V) int32 {
	dist := Distances(g, v)
	var ecc int32
	for _, d := range dist {
		if d != Infinity && d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Workspace holds reusable per-query BFS state for a fixed graph size.
// Distance entries are valid only when their epoch stamp matches the
// current epoch, so resetting between queries is O(1). A Workspace is
// not safe for concurrent use; create one per goroutine.
type Workspace struct {
	n     int
	epoch uint32
	stamp []uint32
	dist  []int32
	queue []graph.V
}

// NewWorkspace creates a workspace for graphs with n vertices.
func NewWorkspace(n int) *Workspace {
	return &Workspace{
		n:     n,
		stamp: make([]uint32, n),
		dist:  make([]int32, n),
		queue: make([]graph.V, 0, 1024),
	}
}

// Reset invalidates all distances in O(1).
func (ws *Workspace) Reset() {
	ws.epoch++
	if ws.epoch == 0 { // wrapped: do the rare full clear
		for i := range ws.stamp {
			ws.stamp[i] = 0
		}
		ws.epoch = 1
	}
	ws.queue = ws.queue[:0]
}

// Dist returns the distance of v in the current epoch, or Infinity.
func (ws *Workspace) Dist(v graph.V) int32 {
	if ws.stamp[v] == ws.epoch {
		return ws.dist[v]
	}
	return Infinity
}

// SetDist stamps v with distance d in the current epoch.
func (ws *Workspace) SetDist(v graph.V, d int32) {
	ws.stamp[v] = ws.epoch
	ws.dist[v] = d
}

// Seen reports whether v has been assigned a distance this epoch.
func (ws *Workspace) Seen(v graph.V) bool { return ws.stamp[v] == ws.epoch }
