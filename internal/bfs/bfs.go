// Package bfs provides the breadth-first-search kernels shared by the
// QbS index and the baselines: single-source distance BFS, the
// bidirectional-BFS shortest-path-graph baseline from the paper (Bi-BFS,
// §6.1), and a brute-force shortest-path-graph oracle used as ground
// truth in tests. The reusable epoch-stamped Workspace and the
// direction-optimizing level expander live in qbs/internal/traverse and
// are re-exported here for the search code that grew up around this
// package.
package bfs

import (
	"qbs/internal/graph"
	"qbs/internal/traverse"
)

// Infinity marks an unreached vertex in distance arrays.
const Infinity = traverse.Infinity

// Workspace is the reusable epoch-stamped BFS state; see
// traverse.Workspace.
type Workspace = traverse.Workspace

// NewWorkspace creates a workspace for graphs with n vertices.
func NewWorkspace(n int) *Workspace { return traverse.NewWorkspace(n) }

// Distances runs a full BFS from source and returns the distance array
// (Infinity for unreachable vertices). It allocates; query paths use
// Workspace instead.
func Distances(g graph.Adjacency, source graph.V) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[source] = 0
	queue := make([]graph.V, 1, n)
	queue[0] = source
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, w := range g.Neighbors(u) {
			if dist[w] == Infinity {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Distance returns d_G(u, v), or Infinity if disconnected. It early-exits
// once v is reached.
func Distance(g graph.Adjacency, u, v graph.V) int32 {
	if u == v {
		return 0
	}
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Infinity
	}
	dist[u] = 0
	queue := make([]graph.V, 1, 1024)
	queue[0] = u
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		dx := dist[x]
		for _, w := range g.Neighbors(x) {
			if dist[w] == Infinity {
				if w == v {
					return dx + 1
				}
				dist[w] = dx + 1
				queue = append(queue, w)
			}
		}
	}
	return Infinity
}

// Eccentricity returns the maximum finite distance from v.
func Eccentricity(g graph.Adjacency, v graph.V) int32 {
	dist := Distances(g, v)
	var ecc int32
	for _, d := range dist {
		if d != Infinity && d > ecc {
			ecc = d
		}
	}
	return ecc
}
