package bfs

import "qbs/internal/graph"

// OracleSPG computes the shortest path graph between u and v by brute
// force: two full BFSes and an edge filter. An edge {x, y} lies on a
// shortest u–v path iff d(u,x) + 1 + d(y,v) = d(u,v) in one orientation.
// This is the ground-truth implementation every query algorithm in the
// repository is tested against. O(|V| + |E|) per query but with full
// scans and allocations — not for production use.
func OracleSPG(g graph.Adjacency, u, v graph.V) *graph.SPG {
	s := graph.NewSPG(u, v)
	if u == v {
		s.Dist = 0
		return s
	}
	distU := Distances(g, u)
	if distU[v] == Infinity {
		return s
	}
	distV := Distances(g, v)
	d := distU[v]
	s.Dist = d
	for x := graph.V(0); x < graph.V(g.NumVertices()); x++ {
		if distU[x] == Infinity {
			continue
		}
		for _, y := range g.Neighbors(x) {
			if x < y && onShortest(distU, distV, d, x, y) {
				s.AddEdge(x, y)
			}
		}
	}
	return s
}

func onShortest(distU, distV []int32, d int32, x, y graph.V) bool {
	if distU[x] != Infinity && distV[y] != Infinity && distU[x]+1+distV[y] == d {
		return true
	}
	return distU[y] != Infinity && distV[x] != Infinity && distU[y]+1+distV[x] == d
}
