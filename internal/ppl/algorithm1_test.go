package ppl

import (
	"testing"

	"qbs/internal/bfs"
	"qbs/internal/graph"
)

// TestPaperAlgorithm1Counterexample documents why this package deviates
// from the paper's Algorithm 1 as printed. The literal algorithm stops
// BFS expansion at a vertex u whenever d_{L_{k-1}}(v_k, u) = depth[u];
// vertices beyond u then never receive the label (v_k, ·) even when the
// 2-hop path cover (Definition 3.2) requires it. On the 5×5 grid with
// the paper's descending-degree order, the pair (0, 12) ends up with
// vertex 6 as its only common minimizing landmark, so the query
// recursion reconstructs only the shortest paths through vertex 6 and
// loses e.g. 0–1–2–7–12 — the answer is wrong.
//
// The test builds the literal labelling and shows the failure, then
// verifies the corrected canonical labelling answers the same query
// exactly.
func TestPaperAlgorithm1Counterexample(t *testing.T) {
	g := graph.Grid(5, 5)
	lit := buildLiteralAlgorithm1(g)
	u, v := graph.V(0), graph.V(12)

	want := bfs.OracleSPG(g, u, v)
	got := lit.Query(u, v)
	if got.Equal(want) {
		t.Fatalf("expected the literal Algorithm 1 to fail on SPG(0,12); " +
			"if this now passes, the counterexample is stale and the package " +
			"doc comment should be updated")
	}
	// The corrected labelling must answer exactly.
	fixed := MustBuild(g, Options{})
	if got := fixed.Query(u, v); !got.Equal(want) {
		t.Fatalf("corrected PPL wrong: got %v want %v", got, want)
	}
}

// buildLiteralAlgorithm1 constructs the paper's Algorithm 1 labelling
// verbatim: prune (no label, no expansion) when d_{L_{k-1}} < depth, add
// a label always otherwise, and stop expansion when d_{L_{k-1}} = depth.
func buildLiteralAlgorithm1(g *graph.Graph) *Index {
	n := g.NumVertices()
	ix := &Index{
		g:      g,
		order:  g.VerticesByDegree(),
		rankOf: make([]int32, n),
		labels: make([][]entry, n),
	}
	for rank, v := range ix.order {
		ix.rankOf[v] = int32(rank)
	}
	depth := make([]int32, n)
	rootDist := make([]int32, n)
	for i := range depth {
		depth[i] = -1
		rootDist[i] = -1
	}
	for rank := 0; rank < n; rank++ {
		root := ix.order[rank]
		var loaded []int32
		for _, e := range ix.labels[root] {
			rootDist[e.rank] = e.dist
			loaded = append(loaded, e.rank)
		}
		distL := func(u graph.V) int32 {
			best := graph.InfDist
			for _, e := range ix.labels[u] {
				if rd := rootDist[e.rank]; rd >= 0 && rd+e.dist < best {
					best = rd + e.dist
				}
			}
			return best
		}
		var visited []graph.V
		depth[root] = 0
		visited = append(visited, root)
		queue := []graph.V{root}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			dl := distL(u)
			if dl < depth[u] {
				continue
			}
			ix.labels[u] = append(ix.labels[u], entry{rank: int32(rank), dist: depth[u]})
			ix.numEntries++
			if dl == depth[u] {
				continue
			}
			for _, w := range g.Neighbors(u) {
				if depth[w] < 0 {
					depth[w] = depth[u] + 1
					visited = append(visited, w)
					queue = append(queue, w)
				}
			}
		}
		for _, v := range visited {
			depth[v] = -1
		}
		for _, r := range loaded {
			rootDist[r] = -1
		}
	}
	return ix
}
