package ppl

import (
	"qbs/internal/graph"
)

// Query answering (§3.2). PPL reconstructs the shortest path graph by
// recursively splitting each pair at the common landmarks witnessing the
// distance: SPG(u, v) = ⋃_{r ∈ V_uv} SPG(u, r) ∪ SPG(v, r). The
// recursion memoises processed pairs, but labels of a vertex are still
// consulted repeatedly and edges can be rediscovered along different
// splits — the redundancy the paper identifies as PPL's weakness
// (Example 3.4).
//
// ParentPPL walks the parent sets stored with each label entry instead,
// falling back to the landmark split when an entry was pruned.

// pairKey canonicalises an unordered vertex pair for memoisation.
func pairKey(u, v graph.V) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// Query answers SPG(u, v) from a PPL or ParentPPL index.
func (ix *Index) Query(u, v graph.V) *graph.SPG {
	spg := graph.NewSPG(u, v)
	if u == v {
		spg.Dist = 0
		return spg
	}
	d := ix.Distance(u, v)
	spg.Dist = d
	if d == graph.InfDist {
		return spg
	}
	type task struct {
		u, v graph.V
		d    int32
	}
	done := make(map[uint64]bool)
	stack := []task{{u, v, d}}
	done[pairKey(u, v)] = true
	push := func(a, b graph.V, dd int32) {
		k := pairKey(a, b)
		if !done[k] {
			done[k] = true
			stack = append(stack, task{a, b, dd})
		}
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.d == 1 {
			spg.AddEdge(t.u, t.v)
			continue
		}
		if ix.withParents {
			ix.expandWithParents(spg, t.u, t.v, t.d, push)
			continue
		}
		for _, m := range ix.commonMinimizers(t.u, t.v, t.d) {
			push(t.u, m.r, m.du)
			push(t.v, m.r, m.dv)
		}
	}
	return spg
}

// expandWithParents handles one pair using stored parent sets: if either
// side's label carries an entry for the other side as a landmark, walk
// its parents; otherwise split at common minimizing landmarks as PPL
// does. Walking emits the first edge of every shortest path from the
// labelled vertex and recurses on the remainder.
func (ix *Index) expandWithParents(spg *graph.SPG, u, v graph.V, d int32, push func(graph.V, graph.V, int32)) {
	// Prefer walking toward the higher-ranked (higher-degree) endpoint,
	// which is the more likely BFS root.
	if e := ix.findEntry(u, v); e != nil && len(e.parents) > 0 {
		for _, w := range e.parents {
			spg.AddEdge(u, w)
			if d > 1 && w != v {
				push(w, v, d-1)
			}
		}
		return
	}
	if e := ix.findEntry(v, u); e != nil && len(e.parents) > 0 {
		for _, w := range e.parents {
			spg.AddEdge(v, w)
			if d > 1 && w != u {
				push(w, u, d-1)
			}
		}
		return
	}
	for _, m := range ix.commonMinimizers(u, v, d) {
		push(u, m.r, m.du)
		push(v, m.r, m.dv)
	}
}

// findEntry returns u's label entry whose landmark is the vertex t, or
// nil (binary search over the rank-sorted label).
func (ix *Index) findEntry(u, t graph.V) *entry {
	rank := ix.rankOf[t]
	es := ix.labels[u]
	lo, hi := 0, len(es)
	for lo < hi {
		mid := (lo + hi) / 2
		if es[mid].rank < rank {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(es) && es[lo].rank == rank {
		return &es[lo]
	}
	return nil
}

// VerifyPathCover checks the 2-hop path cover property (Definition 3.2)
// by brute force: for every pair at distance ≥ 2, every shortest path
// must contain an interior vertex that is a common label landmark
// witnessing the distance. Exponential in path multiplicity; tests use
// it on small graphs only. Returns the first violating pair.
func (ix *Index) VerifyPathCover(distFn func(a, b graph.V) int32) (bad [2]graph.V, ok bool) {
	g := ix.g
	n := g.NumVertices()
	for u := graph.V(0); u < graph.V(n); u++ {
		for v := u + 1; v < graph.V(n); v++ {
			d := distFn(u, v)
			if d < 2 || d == graph.InfDist {
				continue
			}
			if !ix.coversAllPaths(u, v, d, distFn) {
				return [2]graph.V{u, v}, false
			}
		}
	}
	return bad, true
}

// coversAllPaths enumerates all shortest u–v paths (DFS over the
// distance DAG) and checks each contains an interior common minimizer.
func (ix *Index) coversAllPaths(u, v graph.V, d int32, distFn func(a, b graph.V) int32) bool {
	mins := map[graph.V]bool{}
	for _, m := range ix.commonMinimizers(u, v, d) {
		mins[m.r] = true
	}
	var dfs func(x graph.V, depth int32, seenMin bool) bool
	dfs = func(x graph.V, depth int32, seenMin bool) bool {
		if x == v {
			return seenMin
		}
		for _, w := range ix.g.Neighbors(x) {
			if distFn(u, w) == depth+1 && distFn(w, v) == d-depth-1 {
				if !dfs(w, depth+1, seenMin || (w != v && mins[w])) {
					return false
				}
			}
		}
		return true
	}
	return dfs(u, 0, false)
}
