// Package ppl implements the paper's labelling-based baselines for
// shortest-path-graph queries (§3.2):
//
//   - PPL — pruned path labelling: a 2-hop labelling satisfying the
//     2-hop *path* cover property (Definition 3.2), built by one pruned
//     BFS per vertex in descending-degree order.
//   - ParentPPL — PPL with complete parent sets attached to every label
//     entry, trading memory for faster query-time path reconstruction.
//
// # Correction to the paper's Algorithm 1
//
// Algorithm 1 as printed prunes expansion whenever the label-estimated
// distance d_{L_{k−1}}(v_k, u) equals the BFS depth. That cut makes
// vertices beyond u unreachable in v_k's BFS, so they never receive the
// label (v_k, ·) even when Definition 3.2 requires it. Concretely, on a
// 5×5 grid with the paper's degree order, the pair (0, 12) ends up with
// vertex 6 as its only common witness, and the query recursion loses the
// shortest paths avoiding vertex 6 (see TestPaperAlgorithm1Counterexample).
//
// We therefore build the *canonical* path labelling instead:
//
//	(v_k, δ) ∈ L(u)  ⇔  some shortest v_k–u path has all interior
//	                     vertices ranked after v_k in the landmark order.
//
// This rule provably satisfies the 2-hop path cover: for any shortest
// path p between u and v with |p| ≥ 2, the earliest-ranked interior
// vertex w* of p witnesses the pair, since the sub-paths u…w* and w*…v
// have interiors ranked after w*. It is computed by one BFS per root
// with a has-clean-parent DP, stopping early once a level carries no
// labelled vertex; worst-case construction stays O(|V||E|), the
// scalability wall the paper contrasts QbS against.
//
// Construction accepts time and size budgets so the experiment harness
// can reproduce the paper's DNF (>time limit) and OOE (out of memory)
// table entries at laptop scale.
package ppl

import (
	"errors"
	"time"

	"qbs/internal/graph"
)

// ErrTimeBudget reports that construction exceeded Options.MaxTime
// (the paper's DNF, "did not finish").
var ErrTimeBudget = errors.New("ppl: construction exceeded time budget (DNF)")

// ErrSizeBudget reports that the labelling exceeded
// Options.MaxLabelBytes (the paper's OOE, "out of memory").
var ErrSizeBudget = errors.New("ppl: labelling exceeded size budget (OOE)")

// Options configures construction.
type Options struct {
	// WithParents builds ParentPPL instead of PPL.
	WithParents bool
	// MaxTime aborts construction when exceeded (0 = unlimited).
	MaxTime time.Duration
	// MaxLabelBytes aborts construction when the labelling's byte
	// accounting exceeds it (0 = unlimited).
	MaxLabelBytes int64
}

// entry is one label element: the landmark's rank in the degree order
// and the exact distance. Parents (ParentPPL only) are the neighbours of
// the labelled vertex one step closer to the landmark; the set is
// complete (every shortest-path predecessor), so parent walks enumerate
// all shortest paths toward the landmark.
type entry struct {
	rank    int32
	dist    int32
	parents []graph.V
}

// Index is a PPL or ParentPPL labelling.
type Index struct {
	g           *graph.Graph
	order       []graph.V // rank -> vertex
	rankOf      []int32   // vertex -> rank
	labels      [][]entry // per vertex, ascending rank
	withParents bool

	buildTime  time.Duration
	numEntries int64
	numParents int64
}

// BuildTime returns the construction wall time.
func (ix *Index) BuildTime() time.Duration { return ix.buildTime }

// NumEntries returns the total number of label entries.
func (ix *Index) NumEntries() int64 { return ix.numEntries }

// SizeBytes accounts the labelling like the paper (§6.1): 32 bits per
// landmark id, 8 bits per distance, and 32 bits per stored parent.
func (ix *Index) SizeBytes() int64 {
	return ix.numEntries*5 + ix.numParents*4
}

// Build constructs the labelling over g.
func Build(g *graph.Graph, opts Options) (*Index, error) {
	n := g.NumVertices()
	ix := &Index{
		g:           g,
		order:       g.VerticesByDegree(),
		rankOf:      make([]int32, n),
		labels:      make([][]entry, n),
		withParents: opts.WithParents,
	}
	for rank, v := range ix.order {
		ix.rankOf[v] = int32(rank)
	}

	start := time.Now()
	deadline := time.Time{}
	if opts.MaxTime > 0 {
		deadline = start.Add(opts.MaxTime)
	}

	st := newBFSState(n)
	for rank := 0; rank < n; rank++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, ErrTimeBudget
		}
		ix.canonicalBFS(int32(rank), st)
		if opts.MaxLabelBytes > 0 && ix.SizeBytes() > opts.MaxLabelBytes {
			return nil, ErrSizeBudget
		}
	}
	ix.buildTime = time.Since(start)
	return ix, nil
}

// MustBuild is Build that panics on error.
func MustBuild(g *graph.Graph, opts Options) *Index {
	ix, err := Build(g, opts)
	if err != nil {
		panic(err)
	}
	return ix
}

type bfsState struct {
	depth   []int32 // -1 = unvisited in current BFS
	clean   []bool  // reached via a shortest path with later-ranked interior
	cur     []graph.V
	next    []graph.V
	visited []graph.V
}

func newBFSState(n int) *bfsState {
	s := &bfsState{
		depth: make([]int32, n),
		clean: make([]bool, n),
	}
	for i := range s.depth {
		s.depth[i] = -1
	}
	return s
}

// canonicalBFS labels, from root = order[rank], every vertex u for which
// some shortest root–u path has all interior vertices ranked after rank.
// clean[u] tracks exactly that property via the DP
//
//	clean[u] = ∃ parent w at depth−1 : w = root ∨ (rankOf(w) > rank ∧ clean[w])
//
// Levels are expanded completely (so depths of all potential parents are
// exact) until a level contains no clean vertex, at which point no deeper
// vertex can become clean and the BFS stops.
func (ix *Index) canonicalBFS(rank int32, st *bfsState) {
	g := ix.g
	root := ix.order[rank]

	st.depth[root] = 0
	st.clean[root] = true
	st.visited = append(st.visited[:0], root)
	st.cur = append(st.cur[:0], root)
	ix.addLabel(root, rank, 0, nil)

	depth := int32(0)
	for len(st.cur) > 0 {
		// Discover the next level completely.
		st.next = st.next[:0]
		for _, u := range st.cur {
			for _, w := range g.Neighbors(u) {
				if st.depth[w] < 0 {
					st.depth[w] = depth + 1
					st.visited = append(st.visited, w)
					st.next = append(st.next, w)
				}
			}
		}
		// Classify the new level and emit labels.
		anyClean := false
		for _, u := range st.next {
			clean := false
			for _, w := range g.Neighbors(u) {
				if st.depth[w] == depth && (w == root || (ix.rankOf[w] > rank && st.clean[w])) {
					clean = true
					break
				}
			}
			st.clean[u] = clean
			if clean {
				anyClean = true
				var parents []graph.V
				if ix.withParents {
					for _, w := range g.Neighbors(u) {
						if st.depth[w] == depth {
							parents = append(parents, w)
						}
					}
				}
				ix.addLabel(u, rank, depth+1, parents)
			}
		}
		if !anyClean {
			break
		}
		st.cur, st.next = st.next, st.cur
		depth++
	}

	for _, v := range st.visited {
		st.depth[v] = -1
		st.clean[v] = false
	}
	st.visited = st.visited[:0]
	st.cur = st.cur[:0]
	st.next = st.next[:0]
}

// addLabel appends (rank, dist) to u's label. Ranks arrive in strictly
// increasing order across BFS roots, so appending keeps labels sorted.
func (ix *Index) addLabel(u graph.V, rank, dist int32, parents []graph.V) {
	ix.labels[u] = append(ix.labels[u], entry{rank: rank, dist: dist, parents: parents})
	ix.numEntries++
	ix.numParents += int64(len(parents))
}

// Distance returns d_G(u, v) via the 2-hop labels (exact by the distance
// cover property), or graph.InfDist when disconnected.
func (ix *Index) Distance(u, v graph.V) int32 {
	if u == v {
		return 0
	}
	best := graph.InfDist
	la, lb := ix.labels[u], ix.labels[v]
	i, j := 0, 0
	for i < len(la) && j < len(lb) {
		switch {
		case la[i].rank < lb[j].rank:
			i++
		case la[i].rank > lb[j].rank:
			j++
		default:
			if d := la[i].dist + lb[j].dist; d < best {
				best = d
			}
			i++
			j++
		}
	}
	return best
}

// commonMinimizers returns the vertices r ∉ {u, v} whose label pair
// witnesses d(u, v) = d: the set V_uv driving the PPL query recursion,
// together with the per-side distances.
func (ix *Index) commonMinimizers(u, v graph.V, d int32) []minimizer {
	var out []minimizer
	la, lb := ix.labels[u], ix.labels[v]
	i, j := 0, 0
	for i < len(la) && j < len(lb) {
		switch {
		case la[i].rank < lb[j].rank:
			i++
		case la[i].rank > lb[j].rank:
			j++
		default:
			if la[i].dist+lb[j].dist == d {
				r := ix.order[la[i].rank]
				if r != u && r != v {
					out = append(out, minimizer{r: r, du: la[i].dist, dv: lb[j].dist})
				}
			}
			i++
			j++
		}
	}
	return out
}

type minimizer struct {
	r      graph.V
	du, dv int32
}
