package ppl

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"qbs/internal/bfs"
	"qbs/internal/graph"
)

func connected(g *graph.Graph) *graph.Graph {
	lc, _ := g.LargestComponent()
	return lc
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path10":    graph.Path(10),
		"cycle9":    graph.Cycle(9),
		"star15":    graph.Star(15),
		"complete7": graph.Complete(7),
		"grid5x5":   graph.Grid(5, 5),
		"er150":     connected(graph.ErdosRenyi(150, 320, 1)),
		"ba150":     connected(graph.BarabasiAlbert(150, 3, 2)),
		"ws120":     connected(graph.WattsStrogatz(120, 4, 0.2, 3)),
		"disconnected": graph.MustFromEdges(8, []graph.Edge{
			{U: 0, W: 1}, {U: 1, W: 2}, {U: 4, W: 5}, {U: 5, W: 6}, {U: 6, W: 7},
		}),
	}
}

func TestDistanceMatchesBFS(t *testing.T) {
	for name, g := range testGraphs() {
		for _, withParents := range []bool{false, true} {
			ix := MustBuild(g, Options{WithParents: withParents})
			rng := rand.New(rand.NewSource(7))
			n := g.NumVertices()
			for i := 0; i < 150; i++ {
				u := graph.V(rng.Intn(n))
				v := graph.V(rng.Intn(n))
				want := bfs.Distance(g, u, v)
				if want == bfs.Infinity {
					want = graph.InfDist
				}
				if got := ix.Distance(u, v); got != want {
					t.Fatalf("%s parents=%v: dist(%d,%d)=%d want %d", name, withParents, u, v, got, want)
				}
			}
		}
	}
}

func TestPPLQueryMatchesOracle(t *testing.T) {
	for name, g := range testGraphs() {
		ix := MustBuild(g, Options{})
		n := g.NumVertices()
		var pairs [][2]graph.V
		if n <= 20 {
			for u := 0; u < n; u++ {
				for v := u; v < n; v++ {
					pairs = append(pairs, [2]graph.V{graph.V(u), graph.V(v)})
				}
			}
		} else {
			rng := rand.New(rand.NewSource(13))
			for i := 0; i < 120; i++ {
				pairs = append(pairs, [2]graph.V{graph.V(rng.Intn(n)), graph.V(rng.Intn(n))})
			}
		}
		for _, p := range pairs {
			got := ix.Query(p[0], p[1])
			want := bfs.OracleSPG(g, p[0], p[1])
			if !got.Equal(want) {
				t.Fatalf("%s: PPL SPG(%d,%d) = %v, want %v", name, p[0], p[1], got, want)
			}
		}
	}
}

func TestParentPPLQueryMatchesOracle(t *testing.T) {
	for name, g := range testGraphs() {
		ix := MustBuild(g, Options{WithParents: true})
		n := g.NumVertices()
		rng := rand.New(rand.NewSource(29))
		for i := 0; i < 150; i++ {
			u := graph.V(rng.Intn(n))
			v := graph.V(rng.Intn(n))
			got := ix.Query(u, v)
			want := bfs.OracleSPG(g, u, v)
			if !got.Equal(want) {
				t.Fatalf("%s: ParentPPL SPG(%d,%d) = %v, want %v", name, u, v, got, want)
			}
		}
	}
}

func TestTwoHopPathCover(t *testing.T) {
	// Definition 3.2 on small graphs by exhaustive path enumeration.
	for _, name := range []string{"path10", "cycle9", "star15", "complete7", "grid5x5"} {
		g := testGraphs()[name]
		ix := MustBuild(g, Options{})
		distFn := func(a, b graph.V) int32 {
			d := bfs.Distance(g, a, b)
			if d == bfs.Infinity {
				return graph.InfDist
			}
			return d
		}
		if bad, ok := ix.VerifyPathCover(distFn); !ok {
			t.Fatalf("%s: 2-hop path cover violated for pair %v", name, bad)
		}
	}
}

func TestParentSetsAreExact(t *testing.T) {
	// Every stored parent must lie one step closer to the landmark, and
	// the set must contain all such neighbours.
	g := connected(graph.ErdosRenyi(100, 220, 5))
	ix := MustBuild(g, Options{WithParents: true})
	for v := graph.V(0); v < graph.V(g.NumVertices()); v++ {
		for _, e := range ix.labels[v] {
			root := ix.order[e.rank]
			dist := bfs.Distances(g, root)
			want := map[graph.V]bool{}
			for _, w := range g.Neighbors(v) {
				if dist[w] == e.dist-1 {
					want[w] = true
				}
			}
			if len(want) != len(e.parents) {
				t.Fatalf("vertex %d root %d: %d parents stored, want %d", v, root, len(e.parents), len(want))
			}
			for _, w := range e.parents {
				if !want[w] {
					t.Fatalf("vertex %d root %d: bogus parent %d", v, root, w)
				}
			}
		}
	}
}

func TestLabelsSortedAndExact(t *testing.T) {
	g := connected(graph.BarabasiAlbert(120, 3, 9))
	ix := MustBuild(g, Options{})
	for v := graph.V(0); v < graph.V(g.NumVertices()); v++ {
		es := ix.labels[v]
		for i, e := range es {
			if i > 0 && es[i-1].rank >= e.rank {
				t.Fatalf("vertex %d: labels not strictly rank-sorted", v)
			}
			root := ix.order[e.rank]
			if want := bfs.Distance(g, root, v); want != e.dist {
				t.Fatalf("vertex %d root %d: label dist %d want %d", v, root, e.dist, want)
			}
		}
	}
}

func TestPruningReducesLabels(t *testing.T) {
	// PPL labels must be far smaller than the naive |V|² labelling on a
	// hub-dominated graph.
	g := connected(graph.BarabasiAlbert(300, 3, 11))
	ix := MustBuild(g, Options{})
	n := int64(g.NumVertices())
	if ix.NumEntries() >= n*n/4 {
		t.Fatalf("pruning ineffective: %d entries for %d vertices", ix.NumEntries(), n)
	}
}

func TestSizeAccounting(t *testing.T) {
	g := graph.Cycle(12)
	ppl := MustBuild(g, Options{})
	par := MustBuild(g, Options{WithParents: true})
	if ppl.SizeBytes() != ppl.NumEntries()*5 {
		t.Fatal("PPL size accounting")
	}
	if par.SizeBytes() <= ppl.SizeBytes() {
		t.Fatal("ParentPPL must be larger than PPL")
	}
}

func TestBudgets(t *testing.T) {
	g := connected(graph.ErdosRenyi(400, 1200, 17))
	if _, err := Build(g, Options{MaxTime: time.Nanosecond}); err != ErrTimeBudget {
		t.Fatalf("time budget: err = %v", err)
	}
	if _, err := Build(g, Options{MaxLabelBytes: 16}); err != ErrSizeBudget {
		t.Fatalf("size budget: err = %v", err)
	}
}

func TestQuickPPLProperty(t *testing.T) {
	check := func(seed int64, nRaw, mRaw uint8, withParents bool) bool {
		n := 6 + int(nRaw)%50
		m := n + int(mRaw)%(2*n)
		g := connected(graph.ErdosRenyi(n, m, seed))
		ix := MustBuild(g, Options{WithParents: withParents})
		rng := rand.New(rand.NewSource(seed + 1))
		for i := 0; i < 8; i++ {
			u := graph.V(rng.Intn(g.NumVertices()))
			v := graph.V(rng.Intn(g.NumVertices()))
			if !ix.Query(u, v).Equal(bfs.OracleSPG(g, u, v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
