package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"qbs/internal/obs"
)

// isolatedTracer swaps in a per-server tracer that retains every trace,
// so assertions never depend on the process-wide DefaultTracer's state.
func isolatedTracer(s *Server) *obs.Tracer {
	tr := obs.NewTracer(32)
	tr.SetSlowThreshold(0) // retain everything
	s.SetTracer(tr)
	return tr
}

// TestDebugTracesEndpoints: a traced request shows up in the
// /debug/traces listing and resolves by ID to the full span tree —
// server root with status attr plus the engine stage spans.
func TestDebugTracesEndpoints(t *testing.T) {
	s := testServer(t)
	isolatedTracer(s)

	req := httptest.NewRequest("GET", "/spg?u=0&v=3", nil)
	req.Header.Set(obs.TraceHeader, "cafe000000000001")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)

	var list TracesResponse
	get(t, s, "/debug/traces", &list)
	if list.Count != 1 || len(list.Traces) != 1 {
		t.Fatalf("listing %+v, want exactly the one retained trace", list)
	}
	sum := list.Traces[0]
	if sum.TraceID != "cafe000000000001" || sum.Root != "/spg" || sum.Spans < 2 {
		t.Fatalf("summary %+v", sum)
	}

	var st obs.StoredTrace
	get(t, s, "/debug/traces/cafe000000000001", &st)
	if st.TraceID != "cafe000000000001" || st.Root != "/spg" {
		t.Fatalf("trace %+v", st)
	}
	var rootID string
	for _, sp := range st.Spans {
		if sp.Name == "/spg" {
			rootID = sp.SpanID
			if v, ok := sp.Attrs["status"]; !ok || v != float64(200) {
				t.Fatalf("root status attr %v", sp.Attrs)
			}
		}
	}
	if rootID == "" {
		t.Fatalf("no root span in %+v", st.Spans)
	}
	stages := 0
	for _, sp := range st.Spans {
		if sp.Name == "stage:sketch" || sp.Name == "stage:expand" {
			stages++
			if sp.ParentID != rootID {
				t.Fatalf("stage span %+v not parented to root %s", sp, rootID)
			}
		}
	}
	if stages != 2 {
		t.Fatalf("%d stage spans, want sketch and expand", stages)
	}
}

// TestDebugTracesFilters: n, min_ms and error narrow the listing, bad
// parameters are 400, unknown IDs are 404.
func TestDebugTracesFilters(t *testing.T) {
	s := testServer(t)
	isolatedTracer(s)

	get(t, s, "/spg?u=0&v=3", nil)
	get(t, s, "/spg?u=0&v=99", nil) // 400: parse error, no stage spans

	var list TracesResponse
	get(t, s, "/debug/traces?n=1", &list)
	if list.Count != 1 {
		t.Fatalf("n=1 returned %d traces", list.Count)
	}
	get(t, s, "/debug/traces?min_ms=60000", &list)
	if list.Count != 0 {
		t.Fatalf("min_ms=60000 returned %d traces, want 0", list.Count)
	}

	for _, bad := range []string{"/debug/traces?n=0", "/debug/traces?n=1025", "/debug/traces?n=x", "/debug/traces?min_ms=-1"} {
		if resp := get(t, s, bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	if resp := get(t, s, "/debug/traces/ffffffffffffffff", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d, want 404", resp.StatusCode)
	}
}

// TestSlowLogTraceLinkAndLimit: slow entries link to their retained
// trace, and ?n= bounds the listing (newest first) with out-of-range
// values rejected.
func TestSlowLogTraceLinkAndLimit(t *testing.T) {
	s := testServer(t)
	isolatedTracer(s)
	s.SetSlowLogThreshold(0) // every request is "slow"

	for i := 0; i < 5; i++ {
		get(t, s, "/spg?u=0&v=3", nil)
	}

	var body SlowLogResponse
	get(t, s, "/debug/slowlog", &body)
	if len(body.Entries) != 5 {
		t.Fatalf("%d entries, want 5", len(body.Entries))
	}
	e := body.Entries[0]
	if e.Trace != "/debug/traces/"+e.TraceID {
		t.Fatalf("slow entry trace link %q does not point at its trace %q", e.Trace, e.TraceID)
	}
	// The link resolves: a slow entry always clears the sampling bar.
	var st obs.StoredTrace
	if resp := get(t, s, e.Trace, &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("slow entry trace link %s: status %d", e.Trace, resp.StatusCode)
	}
	if st.TraceID != e.TraceID {
		t.Fatalf("trace link resolved to %q, want %q", st.TraceID, e.TraceID)
	}

	get(t, s, "/debug/slowlog?n=2", &body)
	if len(body.Entries) != 2 {
		t.Fatalf("n=2 returned %d entries", len(body.Entries))
	}
	for _, bad := range []string{"/debug/slowlog?n=0", "/debug/slowlog?n=1025", "/debug/slowlog?n=abc"} {
		if resp := get(t, s, bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestExemplarOnRetainedTrace: once a trace is retained, the endpoint's
// latency histogram exposes an exemplar carrying that trace ID.
func TestExemplarOnRetainedTrace(t *testing.T) {
	s := testServer(t)
	isolatedTracer(s)

	req := httptest.NewRequest("GET", "/spg?u=0&v=3", nil)
	req.Header.Set(obs.TraceHeader, "cafe000000000099")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)

	ep := s.eps["/spg"]
	if ep == nil {
		t.Fatal("no /spg endpoint view")
	}
	sum := ep.latency.Summary()
	ex := ep.latency.ExemplarNear(sum.P50)
	if ex == nil || ex.TraceID != "cafe000000000099" {
		t.Fatalf("latency exemplar %+v, want trace cafe000000000099", ex)
	}
	// Stage histograms carry the same linkage.
	if ex := s.stage[obs.StageSketch].ExemplarNear(time.Millisecond.Nanoseconds()); ex == nil || ex.TraceID != "cafe000000000099" {
		t.Fatalf("sketch stage exemplar %+v", ex)
	}
}
