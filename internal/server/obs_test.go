package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"qbs/internal/obs"
)

// TestTraceIDEchoed: every response carries X-Qbs-Trace-Id — the
// client's when it sent one, a fresh non-empty ID otherwise.
func TestTraceIDEchoed(t *testing.T) {
	s := testServer(t)

	req := httptest.NewRequest("GET", "/spg?u=0&v=3", nil)
	req.Header.Set(obs.TraceHeader, "deadbeefcafe0123")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if got := rec.Header().Get(obs.TraceHeader); got != "deadbeefcafe0123" {
		t.Fatalf("client trace ID not echoed: got %q", got)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/distance?u=0&v=3", nil))
	if got := rec.Header().Get(obs.TraceHeader); got == "" {
		t.Fatal("no trace ID minted for a bare request")
	}
}

// TestHeadMetricsAndHealthz: HEAD answers 200 with no body on the
// probe endpoints, without rendering either payload.
func TestHeadMetricsAndHealthz(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{"/metrics", "/healthz"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("HEAD", path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("HEAD %s: status %d", path, rec.Code)
		}
		if rec.Body.Len() != 0 {
			t.Fatalf("HEAD %s: body %q, want empty", path, rec.Body.String())
		}
	}
}

// TestPrometheusExposition: ?format=prometheus (and a text Accept
// header) switch /metrics to a valid Prometheus text rendering that
// carries the per-endpoint counters, the stage histograms, and the
// process-wide series, with no duplicate series.
func TestPrometheusExposition(t *testing.T) {
	s := testServer(t)
	for i := 0; i < 3; i++ {
		get(t, s, "/spg?u=0&v=3", nil)
	}
	get(t, s, "/spg?u=0&v=99", nil) // one 400

	req := httptest.NewRequest("GET", "/metrics?format=prometheus", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	text := string(body)
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	}
	for _, want := range []string{
		`qbs_http_requests_total{endpoint="/spg"} 4`,
		`qbs_http_errors_total{endpoint="/spg"} 1`,
		`qbs_query_stage_ns_count{stage="sketch"} 3`,
		"qbs_goroutines",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	// Accept negotiation reaches the same rendering.
	req = httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("Accept negotiation: content type %q", ct)
	}
}

// TestStageAndEngineSeriesAdvance: queries move the stage histograms
// and engine counters; error responses do not.
func TestStageAndEngineSeriesAdvance(t *testing.T) {
	s := testServer(t)
	get(t, s, "/spg?u=0&v=3", nil)
	get(t, s, "/paths?u=0&v=3", nil)

	for i := obs.Stage(0); i < obs.NumStages; i++ {
		if c := s.stage[i].Summary().Count; c != 2 {
			t.Fatalf("stage %s: %d observations, want 2", i, c)
		}
	}
	if s.engEntries.Load() == 0 {
		t.Fatal("label-entry counter did not advance")
	}

	before := s.stage[obs.StageSketch].Summary().Count
	get(t, s, "/spg?u=0&v=99", nil) // 400: no query ran
	if after := s.stage[obs.StageSketch].Summary().Count; after != before {
		t.Fatal("error response recorded a stage span")
	}
}

// TestSlowLogEndpoint: with a zero threshold every query lands in the
// slowlog, newest first, carrying its trace ID and engine stats; the
// ring stays bounded under concurrent load.
func TestSlowLogEndpoint(t *testing.T) {
	s := testServer(t)
	s.SetSlowLogThreshold(0)

	req := httptest.NewRequest("GET", "/spg?u=0&v=3", nil)
	req.Header.Set(obs.TraceHeader, "feedface00000001")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)

	var body SlowLogResponse
	get(t, s, "/debug/slowlog", &body)
	if body.Capacity != slowLogCapacity {
		t.Fatalf("capacity %d, want %d", body.Capacity, slowLogCapacity)
	}
	if len(body.Entries) != 1 {
		t.Fatalf("%d entries, want 1", len(body.Entries))
	}
	e := body.Entries[0]
	if e.TraceID != "feedface00000001" || e.Endpoint != "/spg" || e.Status != 200 {
		t.Fatalf("entry %+v", e)
	}
	if !e.HasQuery || e.U != 0 || e.V != 3 || e.Dist != 2 {
		t.Fatalf("query fields not filled: %+v", e)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, httptest.NewRequest("GET", "/spg?u=0&v=3", nil))
			}
		}()
	}
	wg.Wait()
	get(t, s, "/debug/slowlog", &body)
	if len(body.Entries) != slowLogCapacity {
		t.Fatalf("%d entries after overflow, want %d", len(body.Entries), slowLogCapacity)
	}
}

// TestMetricsJSONShapeUnchanged: the default /metrics body stays JSON
// (the pre-observability shape) — Prometheus is strictly opt-in.
func TestMetricsJSONShapeUnchanged(t *testing.T) {
	s := testServer(t)
	resp := get(t, s, "/metrics", nil)
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type %q", ct)
	}
}
