// Package server exposes a QbS index over HTTP with a small JSON API —
// the deployment shape a production user of the library would run:
// build (or load) the index once, then serve shortest-path-graph
// queries at microsecond latency.
//
// A server fronts either an immutable qbs.Index (New) or a live-mutable
// qbs.DynamicIndex (NewMutable). In mutable mode the graph accepts edge
// writes: each write repairs the index incrementally and publishes a new
// snapshot epoch, while in-flight reads keep answering against the
// snapshot they resolved — readers never block on writers.
//
// Read endpoints (both modes):
//
//	GET /spg?u=<id>&v=<id>        the shortest path graph of the pair
//	GET /distance?u=<id>&v=<id>   just the distance
//	GET /sketch?u=<id>&v=<id>     the query sketch (d⊤, minimizing pairs)
//	GET /paths?u=<id>&v=<id>&limit=<n>  enumerated shortest paths
//	GET /stats                    index and graph statistics
//	GET /metrics                  request/error counters, epoch, replication lag
//	GET /healthz                  liveness
//
// On dynamic servers the query endpoints accept &min_epoch=<n>: the
// read is answered only once the index has published at least that
// epoch, and a server still behind responds 503 with a Retry-After
// header — the consistency hook read replicas and the query router use
// for read-your-writes.
//
// Write endpoints (mutable mode only; 404 on an immutable server):
//
//	POST /edges                   body {"u":<id>,"v":<id>} — insert edge
//	DELETE /edges?u=<id>&v=<id>   remove edge
//	GET /epoch                    current snapshot epoch (any dynamic server)
//	POST /checkpoint              persist a snapshot (durable stores only)
//
// Writes respond with {"applied":bool,"epoch":N,"edges":E}; applied is
// false for idempotent no-ops (inserting an existing edge, deleting an
// absent one), which do not advance the epoch. A write that would push
// the graph past the labelling's 254-hop representation limit is
// rejected with 422 and leaves the index unchanged. Requests to /edges
// with any other method return 405 with an Allow header. POST
// /checkpoint responds {"epoch":N} once the snapshot is on disk; on a
// mutable server without a durable store it returns 409.
//
// A third mode, NewDynamicReadOnly, serves a dynamic index (typically
// one recovered from a data directory) with the write endpoints
// withheld — the restart shape of a read replica.
//
// A fourth mode, NewDirected, serves a directed index (qbs.DiIndex):
// /spg answers SPG(u → v) with oriented arcs, /distance the directed
// distance, /sketch the directed sketch, and /stats the directed index
// statistics; /paths and the write endpoints do not exist on a directed
// server. Responses carry "directed": true so clients can tell the
// modes apart.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"qbs"
	"qbs/internal/analysis"
	"qbs/internal/obs"
)

// backend is the query surface shared by the immutable and mutable
// index types.
type backend interface {
	Query(u, v qbs.V) *qbs.SPG
	QueryWithStats(u, v qbs.V) (*qbs.SPG, qbs.QueryStats)
	Distance(u, v qbs.V) int32
	Sketch(u, v qbs.V) *qbs.Sketch
	Landmarks() []qbs.V
	NumVertices() int
	NumEdges() int
	SizeLabelsBytes() int64
	SizeDeltaBytes() int64
}

// staticBackend adapts *qbs.Index to the backend interface.
type staticBackend struct{ *qbs.Index }

func (b staticBackend) NumVertices() int { return b.Graph().NumVertices() }
func (b staticBackend) NumEdges() int    { return b.Graph().NumEdges() }

// Server handles the HTTP API over one index.
type Server struct {
	b        backend
	static   *qbs.Index        // nil in dynamic and directed modes
	dyn      *qbs.DynamicIndex // nil in immutable and directed modes
	di       *qbs.DiIndex      // non-nil only in directed mode
	writable bool              // write endpoints exposed (NewMutable)
	mux      *http.ServeMux

	// One registry backs every /metrics rendering: the JSON body reads
	// the same counters the Prometheus encoder walks. The server's own
	// registry keeps per-endpoint series isolated per instance; extra
	// registries (a replica's apply/lag series) and the process-wide
	// obs.Default stack onto the text exposition.
	reg     *obs.Registry
	extra   []*obs.Registry
	slowlog *obs.SlowLog
	tracer  *obs.Tracer              // span recording + tail sampling
	journal *obs.Journal             // structured event journal (/debug/logs)
	slos    *obs.SLOSet              // per-endpoint objectives (/debug/slo)
	flight  *obs.FlightRecorder      // profile ring (/debug/profiles)
	evErr   *obs.EventDef            // http request_error events (5xx)
	eps     map[string]*endpointView // registry-backed per-endpoint views
	order   []string                 // endpoint registration order
	repl    func() ReplicationStatus // lag provider; nil off replicas

	// Query-path instrumentation: per-stage span histograms and engine
	// counters aggregated from the searcher's QueryStats out-param.
	stage        [obs.NumStages]*obs.Histogram
	engArcs      *obs.Counter
	engWords     *obs.Counter
	engSwitch    *obs.Counter
	engEntries   *obs.Counter
	engParLevels *obs.Counter
	engParChunks *obs.Counter
	engParSteals *obs.Counter
}

// endpointView holds one endpoint's registry-backed series plus the
// objective scoring it (nil when none is declared). slo is bound at
// setup time, before the server starts serving.
type endpointView struct {
	requests *obs.Counter
	errors   *obs.Counter
	inflight *obs.Gauge
	latency  *obs.Histogram
	slo      *obs.SLO
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// AddRegistry stacks an additional registry onto the server's
// Prometheus exposition — how a replica's apply/lag series appear on
// the mux that serves its queries.
func (s *Server) AddRegistry(r *obs.Registry) { s.extra = append(s.extra, r) }

// SlowLog returns the server's slow-query log.
func (s *Server) SlowLog() *obs.SlowLog { return s.slowlog }

// SetSlowLogThreshold adjusts the slow-query recording threshold. The
// tracer's tail-sampling bar follows it: a request slow enough to be
// slow-logged is always slow enough for its span tree to be retained,
// so the log's trace links resolve.
func (s *Server) SetSlowLogThreshold(d time.Duration) {
	s.slowlog.SetThreshold(d)
	s.tracer.SetSlowThreshold(d)
}

// Tracer returns the server's span tracer.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// SetTracer replaces the span tracer (obs.DefaultTracer by default) —
// how tests and multi-server processes keep span stores isolated.
func (s *Server) SetTracer(t *obs.Tracer) {
	if t != nil {
		s.tracer = t
	}
}

// Journal returns the server's event journal.
func (s *Server) Journal() *obs.Journal { return s.journal }

// SetJournal replaces the event journal (obs.DefaultJournal by
// default) — how tests and multi-tier processes keep each tier's
// events attributable. Call before serving.
func (s *Server) SetJournal(j *obs.Journal) {
	if j != nil {
		s.journal = j
		s.evErr = j.Def("http", "request_error", obs.LevelError)
	}
}

// SLOs returns the server's objective set. Objectives added through
// AddSLO before serving are scored by the request middleware.
func (s *Server) SLOs() *obs.SLOSet { return s.slos }

// AddSLO declares an objective and binds it to the endpoint it scores.
// Call before serving; the middleware reads the binding without a lock.
func (s *Server) AddSLO(slo *obs.SLO) *obs.SLO {
	s.slos.Add(slo)
	if ep, ok := s.eps[slo.Endpoint]; ok {
		ep.slo = slo
	}
	return slo
}

// FlightRecorder returns the server's profile ring.
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.flight }

// SetFlightRecorder replaces the flight recorder
// (obs.DefaultFlightRecorder by default). Call before serving.
func (s *Server) SetFlightRecorder(f *obs.FlightRecorder) {
	if f != nil {
		s.flight = f
	}
}

// ReplicationStatus is the lag snapshot a read replica exposes through
// /metrics: the primary epoch it last observed, its own applied epoch,
// and the shipped-record backlog in bytes.
type ReplicationStatus struct {
	PrimaryEpoch uint64
	Epoch        uint64
	LagBytes     int64
}

// SetReplicationStatus attaches a replication lag provider: /metrics
// then reports lag in epochs and bytes alongside the query counters,
// in both the JSON body and the Prometheus exposition.
func (s *Server) SetReplicationStatus(fn func() ReplicationStatus) {
	s.repl = fn
	s.reg.GaugeFunc("qbs_replica_primary_epoch", "", func() float64 {
		return float64(fn().PrimaryEpoch)
	})
	s.reg.GaugeFunc("qbs_replica_lag_epochs", "", func() float64 {
		st := fn()
		if st.PrimaryEpoch > st.Epoch {
			return float64(st.PrimaryEpoch - st.Epoch)
		}
		return 0
	})
	s.reg.GaugeFunc("qbs_replica_lag_bytes", "", func() float64 {
		return float64(fn().LagBytes)
	})
}

// maxWriteBody bounds the request body of every write endpoint. The
// legitimate bodies are tens of bytes; anything larger is a mistake or
// an attack, rejected with 413 before it can balloon server memory.
const maxWriteBody = 64 << 10

// statusRecorder captures the response status for the error counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (w *statusRecorder) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Slow-query log defaults; tune with SetSlowLogThreshold.
const (
	slowLogCapacity  = 128
	slowLogThreshold = 100 * time.Millisecond
)

// stageSpanNames are the materialized span names for the engine's stage
// breakdown, precomputed so the warm path never concatenates strings.
var stageSpanNames = [obs.NumStages]string{
	"stage:parse", "stage:sketch", "stage:expand", "stage:extract", "stage:serialize",
}

// handle registers h under pattern behind the one instrumentation
// middleware: request/error counters, in-flight gauge, latency
// histogram, trace propagation (X-Qbs-Trace-Id and W3C traceparent
// accepted or minted, the ID echoed on the response), span recording
// with tail sampling, and the slow-query log. name is the /metrics key
// (the route path without the method).
func (s *Server) handle(pattern, name string, h http.HandlerFunc) {
	ep, ok := s.eps[name]
	if !ok {
		lbl := `endpoint="` + obs.EscapeLabel(name) + `"`
		ep = &endpointView{
			requests: s.reg.Counter("qbs_http_requests_total", lbl),
			errors:   s.reg.Counter("qbs_http_errors_total", lbl),
			inflight: s.reg.Gauge("qbs_http_inflight", lbl),
			latency:  s.reg.Histogram("qbs_http_request_ns", lbl),
		}
		s.eps[name] = ep
		s.order = append(s.order, name)
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tr := &obs.Trace{ID: r.Header.Get(obs.TraceHeader)}
		var remoteParent uint64
		forced := false
		if id, parent, sampled, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
			tr.ID = id
			remoteParent = parent
			forced = sampled
		}
		if tr.ID == "" {
			tr.ID = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, tr.ID)
		tb := s.tracer.Begin(name, tr.ID, remoteParent, forced)
		tr.Spans = tb
		ep.inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r.WithContext(obs.NewContext(r.Context(), tr)))
		dur := time.Since(start)
		ep.inflight.Add(-1)
		ep.requests.Inc()
		if rec.code >= 400 {
			ep.errors.Inc()
		}
		ep.latency.Observe(dur)
		status := rec.code
		if status == 0 {
			status = http.StatusOK
		}
		ep.slo.Record(int64(dur), status)
		if status >= 500 {
			// 5xx responses journal an error-level event carrying the
			// request's trace ID, so /debug/logs lines join the
			// /debug/traces tree of the same incident.
			s.evErr.EmitTrace(tr.ID, obs.Str("endpoint", name), obs.Int("status", int64(status)))
		}
		if tr.HasQuery {
			// The engine reports stage durations through QueryStats; the
			// middleware owns the span buffer, so the breakdown is
			// materialized as child spans laid end to end from the
			// request start.
			at := start
			for i := obs.Stage(0); i < obs.NumStages; i++ {
				s.stage[i].ObserveNs(tr.StageNs[i])
				if ns := tr.StageNs[i]; ns > 0 {
					tb.AddSpan(stageSpanNames[i], at, time.Duration(ns))
					at = at.Add(time.Duration(ns))
				}
			}
		}
		root := tb.Root()
		root.SetInt("status", int64(status))
		if status >= 500 {
			root.Fail()
		}
		if id, kept := s.tracer.Finish(tb); kept {
			// Retained traces become the exemplars dashboards link from.
			ep.latency.SetExemplar(int64(dur), id)
			if tr.HasQuery {
				for i := obs.Stage(0); i < obs.NumStages; i++ {
					if ns := tr.StageNs[i]; ns > 0 {
						s.stage[i].SetExemplar(ns, id)
					}
				}
			}
		}
		s.slowlog.Fill(tr, name, status, dur, time.Now())
	})
}

// New creates a read-only server over an immutable index.
func New(index *qbs.Index) *Server {
	s := &Server{b: staticBackend{index}, static: index}
	s.routes()
	return s
}

// NewMutable creates a read/write server over a dynamic index. If the
// index is backed by a durable store (qbs.OpenStore/CreateStore), POST
// /checkpoint is exposed as well.
func NewMutable(index *qbs.DynamicIndex) *Server {
	s := &Server{b: index, dyn: index, writable: true}
	s.routes()
	return s
}

// NewDynamicReadOnly serves a dynamic index without its write
// endpoints — e.g. an index recovered from a data directory by a
// process that should only answer queries. Read-only observability
// (GET /epoch, the dynamic /stats section) stays available so an
// operator can confirm what epoch the replica recovered to.
func NewDynamicReadOnly(index *qbs.DynamicIndex) *Server {
	s := &Server{b: index, dyn: index}
	s.routes()
	return s
}

// NewDirected creates a read-only server over a directed index. The
// read endpoints answer directed semantics: /spg is SPG(u → v) with
// oriented arcs, /distance is d(u → v) (generally asymmetric), /sketch
// the directed sketch. /paths is not served in directed mode.
func NewDirected(index *qbs.DiIndex) *Server {
	s := &Server{di: index}
	s.routes()
	return s
}

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.reg = obs.NewRegistry()
	s.slowlog = obs.NewSlowLog(slowLogCapacity, slowLogThreshold)
	s.tracer = obs.DefaultTracer
	s.journal = obs.DefaultJournal
	s.evErr = s.journal.Def("http", "request_error", obs.LevelError)
	s.slos = obs.NewSLOSet(s.reg)
	s.flight = obs.DefaultFlightRecorder
	s.eps = map[string]*endpointView{}
	for i := obs.Stage(0); i < obs.NumStages; i++ {
		s.stage[i] = s.reg.Histogram("qbs_query_stage_ns", `stage="`+i.String()+`"`)
	}
	s.engArcs = s.reg.Counter("qbs_query_arcs_scanned_total", "")
	s.engWords = s.reg.Counter("qbs_query_frontier_words_total", "")
	s.engSwitch = s.reg.Counter("qbs_query_push_pull_switches_total", "")
	s.engEntries = s.reg.Counter("qbs_query_label_entries_total", "")
	s.engParLevels = s.reg.Counter("qbs_query_parallel_levels_total", "")
	s.engParChunks = s.reg.Counter("qbs_query_parallel_chunks_total", "")
	s.engParSteals = s.reg.Counter("qbs_query_parallel_steals_total", "")
	if s.dyn != nil {
		dyn := s.dyn
		s.reg.GaugeFunc("qbs_epoch", "", func() float64 { return float64(dyn.Epoch()) })
	}
	healthz := func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}
	// LB probes: HEAD answers 200 with no body rather than falling
	// through to 405. (The GET patterns below would match HEAD too, but
	// their bodies would be computed just to be discarded.)
	headOK := func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}
	s.mux.HandleFunc("HEAD /metrics", headOK)
	s.mux.HandleFunc("HEAD /healthz", headOK)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", healthz)
	s.mux.HandleFunc("GET /debug/slowlog", s.handleSlowLog)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	s.mux.HandleFunc("GET /debug/logs", func(w http.ResponseWriter, r *http.Request) {
		s.journal.ServeHTTP(w, r)
	})
	s.mux.HandleFunc("GET /debug/slo", func(w http.ResponseWriter, r *http.Request) {
		s.slos.ServeHTTP(w, r)
	})
	profiles := func(w http.ResponseWriter, r *http.Request) {
		s.flight.ServeHTTP(w, r)
	}
	s.mux.HandleFunc("GET /debug/profiles", profiles)
	s.mux.HandleFunc("GET /debug/profiles/{id}", profiles)
	if s.di != nil {
		s.handle("GET /spg", "/spg", s.handleDiSPG)
		s.handle("GET /distance", "/distance", s.handleDiDistance)
		s.handle("GET /sketch", "/sketch", s.handleDiSketch)
		s.handle("GET /stats", "/stats", s.handleDiStats)
		s.defaultSLOs()
		return
	}
	s.handle("GET /spg", "/spg", s.handleSPG)
	s.handle("GET /distance", "/distance", s.handleDistance)
	s.handle("GET /sketch", "/sketch", s.handleSketch)
	s.handle("GET /paths", "/paths", s.handlePaths)
	s.handle("GET /stats", "/stats", s.handleStats)
	if s.dyn != nil {
		s.handle("GET /epoch", "/epoch", s.handleEpoch)
	}
	if s.writable {
		s.handle("POST /edges", "/edges", s.handleAddEdge)
		s.handle("DELETE /edges", "/edges", s.handleRemoveEdge)
		// Any other method on /edges is answered explicitly with 405 +
		// Allow rather than falling through to a 404/400.
		s.mux.HandleFunc("/edges", s.handleEdgesMethodNotAllowed)
		s.handle("POST /checkpoint", "/checkpoint", s.handleCheckpoint)
	}
	s.defaultSLOs()
}

// Default objectives, declared for every server so /debug/slo and the
// qbs_slo_burn_rate series answer out of the box: reads must be 99.9%
// available and answer within 250ms; writes 99.9% available.
const defaultReadSLOLatency = 250 * time.Millisecond

func (s *Server) defaultSLOs() {
	s.AddSLO(obs.NewSLO("read-availability", "/spg", 0.999, defaultReadSLOLatency))
	if s.writable {
		s.AddSLO(obs.NewSLO("write-availability", "/edges", 0.999, 0))
	}
}

// EndpointMetrics is one endpoint's row in /metrics.
type EndpointMetrics struct {
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
}

// ReplicationMetrics is the replication section of /metrics on a read
// replica. Lag saturates at zero: a replica momentarily ahead of the
// tip it last observed reports 0, never an underflowed huge number.
type ReplicationMetrics struct {
	PrimaryEpoch uint64 `json:"primary_epoch"`
	LagEpochs    uint64 `json:"lag_epochs"`
	LagBytes     int64  `json:"lag_bytes"`
}

// MetricsResponse is the JSON body of GET /metrics.
type MetricsResponse struct {
	Endpoints   map[string]EndpointMetrics `json:"endpoints"`
	Epoch       *uint64                    `json:"epoch,omitempty"`
	Replication *ReplicationMetrics        `json:"replication,omitempty"`
}

// WantsPromText reports whether a /metrics request asked for the
// Prometheus text exposition: ?format=prometheus, or an Accept header
// preferring a text format over the default JSON body.
func WantsPromText(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	acc := r.Header.Get("Accept")
	return strings.Contains(acc, "text/plain") || strings.Contains(acc, "openmetrics")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if WantsPromText(r) {
		w.Header().Set("Content-Type", obs.PromContentType)
		regs := make([]*obs.Registry, 0, len(s.extra)+2)
		regs = append(regs, s.reg)
		regs = append(regs, s.extra...)
		regs = append(regs, obs.Default)
		_ = obs.WritePrometheus(w, regs...)
		return
	}
	resp := MetricsResponse{Endpoints: make(map[string]EndpointMetrics, len(s.order))}
	for _, name := range s.order {
		ep := s.eps[name]
		resp.Endpoints[name] = EndpointMetrics{
			Requests: ep.requests.Load(),
			Errors:   ep.errors.Load(),
		}
	}
	if s.dyn != nil {
		epoch := s.dyn.Epoch()
		resp.Epoch = &epoch
	}
	if s.repl != nil {
		st := s.repl()
		m := &ReplicationMetrics{PrimaryEpoch: st.PrimaryEpoch, LagBytes: st.LagBytes}
		if st.PrimaryEpoch > st.Epoch {
			m.LagEpochs = st.PrimaryEpoch - st.Epoch
		}
		resp.Replication = m
	}
	writeJSON(w, http.StatusOK, resp)
}

// SlowLogResponse is the JSON body of GET /debug/slowlog.
type SlowLogResponse struct {
	ThresholdNs int64           `json:"threshold_ns"`
	Capacity    int             `json:"capacity"`
	Entries     []obs.SlowEntry `json:"entries"`
}

func (s *Server) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	entries := s.slowlog.Entries()
	if raw := r.URL.Query().Get("n"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > 1024 {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("parameter \"n\" must be an integer in [1,1024], got %q", raw),
			})
			return
		}
		if n < len(entries) {
			entries = entries[:n]
		}
	}
	writeJSON(w, http.StatusOK, SlowLogResponse{
		ThresholdNs: int64(s.slowlog.Threshold()),
		Capacity:    s.slowlog.Cap(),
		Entries:     entries,
	})
}

// recordQuery folds one query's stats into the engine counters and the
// request trace (stage spans land in the stage histograms when the
// middleware finishes the request).
func (s *Server) recordQuery(r *http.Request, u, v qbs.V, st qbs.QueryStats) {
	s.engArcs.Add(st.ArcsScanned)
	s.engWords.Add(st.FrontierWords)
	s.engSwitch.Add(st.PushPullSwitches)
	s.engEntries.Add(st.LabelEntries)
	s.engParLevels.Add(st.ParallelLevels)
	s.engParChunks.Add(st.ParallelChunks)
	s.engParSteals.Add(st.ParallelSteals)
	if tr := obs.FromContext(r.Context()); tr != nil {
		tr.HasQuery = true
		tr.U, tr.V = int64(u), int64(v)
		tr.Dist = st.Dist
		tr.ArcsScanned = st.ArcsScanned
		tr.FrontierWords = st.FrontierWords
		tr.PushPullSwitches = st.PushPullSwitches
		tr.LabelEntries = st.LabelEntries
		tr.SetStage(obs.StageSketch, st.SketchNs)
		tr.SetStage(obs.StageExpand, st.ExpandNs)
		tr.SetStage(obs.StageExtract, st.ExtractNs)
	}
}

// recordDiQuery is recordQuery for the directed searcher's stats.
func (s *Server) recordDiQuery(r *http.Request, u, v qbs.V, st qbs.DiQueryStats) {
	s.engWords.Add(st.FrontierWords)
	s.engSwitch.Add(st.PushPullSwitches)
	s.engEntries.Add(st.LabelEntries)
	s.engParLevels.Add(st.ParallelLevels)
	s.engParChunks.Add(st.ParallelChunks)
	s.engParSteals.Add(st.ParallelSteals)
	if tr := obs.FromContext(r.Context()); tr != nil {
		tr.HasQuery = true
		tr.U, tr.V = int64(u), int64(v)
		tr.Dist = st.Dist
		tr.FrontierWords = st.FrontierWords
		tr.PushPullSwitches = st.PushPullSwitches
		tr.LabelEntries = st.LabelEntries
		tr.SetStage(obs.StageSketch, st.SketchNs)
		tr.SetStage(obs.StageExpand, st.ExpandNs)
		tr.SetStage(obs.StageExtract, st.ExtractNs)
	}
}

// markParse closes the parse span: from handler entry through argument
// validation.
func markParse(r *http.Request, start time.Time) {
	obs.FromContext(r.Context()).SetStage(obs.StageParse, time.Since(start).Nanoseconds())
}

// writeJSONTraced is writeJSON with the serialization span recorded
// onto the request trace.
func writeJSONTraced(w http.ResponseWriter, r *http.Request, status int, body any) {
	start := time.Now()
	writeJSON(w, status, body)
	obs.FromContext(r.Context()).SetStage(obs.StageSerialize, time.Since(start).Nanoseconds())
}

func (s *Server) handleEdgesMethodNotAllowed(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Allow", "POST, DELETE")
	writeJSON(w, http.StatusMethodNotAllowed, errorBody{
		Error: fmt.Sprintf("method %s not allowed on /edges (allowed: POST, DELETE)", r.Method),
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type errorBody struct {
	Error string `json:"error"`
}

// numVertices returns |V| of whichever index the server fronts.
func (s *Server) numVertices() int {
	if s.di != nil {
		return s.di.Graph().NumVertices()
	}
	return s.b.NumVertices()
}

func (s *Server) parseVertex(w http.ResponseWriter, name, raw string) (qbs.V, bool) {
	if raw == "" {
		// Distinguish an absent parameter from a malformed one — the
		// generic message below would report the confusing `got ""`.
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("missing required parameter %q", name),
		})
		return 0, false
	}
	id, err := strconv.Atoi(raw)
	if err != nil || id < 0 || id >= s.numVertices() {
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("parameter %q must be a vertex id in [0,%d), got %q",
				name, s.numVertices(), raw),
		})
		return 0, false
	}
	return qbs.V(id), true
}

func (s *Server) pair(w http.ResponseWriter, r *http.Request) (u, v qbs.V, ok bool) {
	u, ok = s.parseVertex(w, "u", r.URL.Query().Get("u"))
	if !ok {
		return
	}
	v, ok = s.parseVertex(w, "v", r.URL.Query().Get("v"))
	return
}

// freshEnough enforces the min_epoch read-your-writes contract on
// dynamic servers: a read carrying min_epoch=N is only answered once
// the index has published epoch N; a replica still behind answers 503
// with Retry-After so clients (and the query router) can go elsewhere.
// Epochs are monotonic, so a snapshot resolved after this check is at
// least as fresh as the epoch observed here.
func (s *Server) freshEnough(w http.ResponseWriter, r *http.Request) bool {
	raw := r.URL.Query().Get("min_epoch")
	if raw == "" || s.dyn == nil {
		return true
	}
	min, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("parameter \"min_epoch\" must be a non-negative integer, got %q", raw),
		})
		return false
	}
	epoch := s.dyn.Epoch()
	if epoch >= min {
		return true
	}
	w.Header().Set("Retry-After", "1")
	w.Header().Set("X-Qbs-Epoch", strconv.FormatUint(epoch, 10))
	writeJSON(w, http.StatusServiceUnavailable, errorBody{
		Error: fmt.Sprintf("index at epoch %d, behind requested min_epoch %d", epoch, min),
	})
	return false
}

// boundBody rejects oversized write-request bodies with 413 and caps
// what any handler can read from the rest via http.MaxBytesReader.
func (s *Server) boundBody(w http.ResponseWriter, r *http.Request) bool {
	if r.ContentLength > maxWriteBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{
			Error: fmt.Sprintf("request body of %d bytes exceeds the %d-byte limit", r.ContentLength, maxWriteBody),
		})
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxWriteBody)
	return true
}

// drainBounded is boundBody for handlers that ignore their request
// body (DELETE /edges, POST /checkpoint): the body is read off and
// discarded up to the limit, so a chunked upload that carries no
// Content-Length is also caught and answered 413 — without this, a
// bound the handler never reads would never trip.
func (s *Server) drainBounded(w http.ResponseWriter, r *http.Request) bool {
	if !s.boundBody(w, r) {
		return false
	}
	if _, err := io.Copy(io.Discard, r.Body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{
				Error: fmt.Sprintf("request body exceeds the %d-byte limit", maxWriteBody),
			})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "could not read request body"})
		return false
	}
	return true
}

// SPGResponse is the JSON body of /spg.
type SPGResponse struct {
	Source   int32      `json:"source"`
	Target   int32      `json:"target"`
	Distance *int32     `json:"distance"` // null when disconnected
	Vertices []int32    `json:"vertices"`
	Edges    [][2]int32 `json:"edges"`
	// NumPaths saturates at MaxInt64 (NumPathsSaturated true): the true
	// count then exceeds int64 — it is never reported negative.
	NumPaths          int64  `json:"num_shortest_paths"`
	NumPathsSaturated bool   `json:"num_shortest_paths_saturated,omitempty"`
	DTop              *int32 `json:"d_top"`
	ArcsScanned       int64  `json:"arcs_scanned"`
	Coverage          string `json:"coverage"`
	Disconnected      bool   `json:"disconnected"`
	Directed          bool   `json:"directed,omitempty"`
}

func coverageName(c qbs.QueryStats) string {
	switch c.Coverage {
	case qbs.CoverageAll:
		return "all"
	case qbs.CoverageSome:
		return "some"
	case qbs.CoverageNone:
		return "none"
	default:
		return "trivial"
	}
}

func (s *Server) handleSPG(w http.ResponseWriter, r *http.Request) {
	pStart := time.Now()
	if !s.freshEnough(w, r) {
		return
	}
	u, v, ok := s.pair(w, r)
	if !ok {
		return
	}
	markParse(r, pStart)
	spg, st := s.b.QueryWithStats(u, v)
	s.recordQuery(r, u, v, st)
	resp := SPGResponse{
		Source:      u,
		Target:      v,
		ArcsScanned: st.ArcsScanned,
		Coverage:    coverageName(st),
	}
	if spg.Dist == qbs.InfDist {
		resp.Disconnected = true
	} else {
		d := spg.Dist
		resp.Distance = &d
		if st.DTop != qbs.InfDist {
			dt := st.DTop
			resp.DTop = &dt
		}
		resp.Vertices = spg.Vertices()
		for _, e := range spg.Edges() {
			resp.Edges = append(resp.Edges, [2]int32{e.U, e.W})
		}
		if dag := analysis.BuildDAG(spg, func(x qbs.V) int32 { return s.b.Distance(u, x) }); dag != nil {
			resp.NumPaths, resp.NumPathsSaturated = dag.CountPaths()
		} else if u == v {
			resp.NumPaths = 1
		}
	}
	writeJSONTraced(w, r, http.StatusOK, resp)
}

// DistanceResponse is the JSON body of /distance.
type DistanceResponse struct {
	Source       int32  `json:"source"`
	Target       int32  `json:"target"`
	Distance     *int32 `json:"distance"`
	Disconnected bool   `json:"disconnected"`
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	if !s.freshEnough(w, r) {
		return
	}
	u, v, ok := s.pair(w, r)
	if !ok {
		return
	}
	d := s.b.Distance(u, v)
	resp := DistanceResponse{Source: u, Target: v}
	if d == qbs.InfDist {
		resp.Disconnected = true
	} else {
		resp.Distance = &d
	}
	writeJSON(w, http.StatusOK, resp)
}

// SketchResponse is the JSON body of /sketch.
type SketchResponse struct {
	Source    int32      `json:"source"`
	Target    int32      `json:"target"`
	DTop      *int32     `json:"d_top"`
	Pairs     [][2]int32 `json:"minimizing_landmark_pairs"` // landmark vertex ids
	Landmarks []int32    `json:"landmarks"`
}

func (s *Server) handleSketch(w http.ResponseWriter, r *http.Request) {
	if !s.freshEnough(w, r) {
		return
	}
	u, v, ok := s.pair(w, r)
	if !ok {
		return
	}
	sk := s.b.Sketch(u, v)
	resp := SketchResponse{Source: u, Target: v, Landmarks: s.b.Landmarks()}
	if sk.DTop != qbs.InfDist {
		dt := sk.DTop
		resp.DTop = &dt
		for _, p := range sk.Pairs {
			resp.Pairs = append(resp.Pairs, [2]int32{
				s.b.Landmarks()[p.R], s.b.Landmarks()[p.RPrime],
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// PathsResponse is the JSON body of /paths.
type PathsResponse struct {
	Source   int32  `json:"source"`
	Target   int32  `json:"target"`
	Distance *int32 `json:"distance"`
	// NumPaths saturates at MaxInt64 (NumPathsSaturated true) instead of
	// overflowing negative, so Truncated keeps its meaning on
	// astronomically path-rich pairs.
	NumPaths          int64     `json:"num_shortest_paths"`
	NumPathsSaturated bool      `json:"num_shortest_paths_saturated,omitempty"`
	Paths             [][]int32 `json:"paths"`
	Truncated         bool      `json:"truncated"`
}

func (s *Server) handlePaths(w http.ResponseWriter, r *http.Request) {
	pStart := time.Now()
	if !s.freshEnough(w, r) {
		return
	}
	u, v, ok := s.pair(w, r)
	if !ok {
		return
	}
	limit := 16
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > 1024 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "limit must be in [1,1024]"})
			return
		}
		limit = n
	}
	markParse(r, pStart)
	resp := PathsResponse{Source: u, Target: v}
	if u == v {
		// The trivial pair: distance 0 and the one-vertex path [u],
		// consistent with /spg (which reports distance 0 and one path).
		zero := int32(0)
		resp.Distance = &zero
		resp.NumPaths = 1
		resp.Paths = [][]int32{{int32(u)}}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	spg, st := s.b.QueryWithStats(u, v)
	s.recordQuery(r, u, v, st)
	if spg.Dist != qbs.InfDist {
		d := spg.Dist
		resp.Distance = &d
		dag := analysis.BuildDAG(spg, func(x qbs.V) int32 { return s.b.Distance(u, x) })
		if dag != nil {
			resp.NumPaths, resp.NumPathsSaturated = dag.CountPaths()
			for _, p := range dag.EnumeratePaths(limit) {
				resp.Paths = append(resp.Paths, p)
			}
			resp.Truncated = resp.NumPaths > int64(len(resp.Paths))
		}
	}
	writeJSONTraced(w, r, http.StatusOK, resp)
}

// DynamicStatsResponse is the dynamic-maintenance section of /stats
// (mutable servers only).
type DynamicStatsResponse struct {
	Epoch           uint64 `json:"epoch"`
	Inserts         uint64 `json:"inserts"`
	Deletes         uint64 `json:"deletes"`
	ColumnsRepaired uint64 `json:"columns_repaired"`
	ColumnsRebuilt  uint64 `json:"columns_rebuilt"`
	LabelsRewritten uint64 `json:"labels_rewritten"`
	DeltaRecomputes uint64 `json:"delta_recomputes"`
	Compactions     uint64 `json:"compactions"`
	Overridden      int    `json:"overridden_vertices"`
}

// StatsResponse is the JSON body of /stats. In directed mode Edges
// counts arcs, AvgDegree is arcs/|V| and Directed is true.
type StatsResponse struct {
	Vertices       int                   `json:"vertices"`
	Edges          int                   `json:"edges"`
	AvgDegree      float64               `json:"avg_degree"`
	NumLandmarks   int                   `json:"num_landmarks"`
	Landmarks      []int32               `json:"landmarks"`
	LabelEntries   int64                 `json:"label_entries,omitempty"`
	MetaEdges      int                   `json:"meta_edges,omitempty"`
	SizeLabels     int64                 `json:"size_labels_bytes"`
	SizeDelta      int64                 `json:"size_delta_bytes"`
	LabellingMS    float64               `json:"labelling_ms,omitempty"`
	ConstructionMS float64               `json:"construction_ms,omitempty"`
	Mutable        bool                  `json:"mutable"`
	Directed       bool                  `json:"directed,omitempty"`
	Dynamic        *DynamicStatsResponse `json:"dynamic,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	nv, ne := s.b.NumVertices(), s.b.NumEdges()
	resp := StatsResponse{
		Vertices:     nv,
		Edges:        ne,
		NumLandmarks: len(s.b.Landmarks()),
		Landmarks:    s.b.Landmarks(),
		SizeLabels:   s.b.SizeLabelsBytes(),
		SizeDelta:    s.b.SizeDeltaBytes(),
		Mutable:      s.writable,
	}
	if nv > 0 {
		resp.AvgDegree = 2 * float64(ne) / float64(nv)
	}
	if s.static != nil {
		st := s.static.Stats()
		resp.LabelEntries = st.LabelEntries
		resp.MetaEdges = st.MetaEdges
		resp.LabellingMS = float64(st.LabellingTime.Microseconds()) / 1000
		resp.ConstructionMS = float64(st.TotalTime.Microseconds()) / 1000
	}
	if s.dyn != nil {
		d := s.dyn.DynamicStats()
		// Pin the epoch/edge pair to one snapshot; the counters are
		// advisory and may trail by an in-flight write.
		epoch, edges := s.dyn.EpochEdges()
		resp.Edges = edges
		if nv > 0 {
			resp.AvgDegree = 2 * float64(edges) / float64(nv)
		}
		resp.Dynamic = &DynamicStatsResponse{
			Epoch:           epoch,
			Inserts:         d.Inserts,
			Deletes:         d.Deletes,
			ColumnsRepaired: d.ColumnsRepaired,
			ColumnsRebuilt:  d.ColumnsRebuilt,
			LabelsRewritten: d.LabelsRewritten,
			DeltaRecomputes: d.DeltaRecomputes,
			Compactions:     d.Compactions,
			Overridden:      d.Overridden,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- directed mode ----------------------------------------------------

// handleDiSPG answers the directed shortest path graph. Arcs are
// oriented From→To in the Edges field; paths are counted over the
// directed DAG the arcs already form.
func (s *Server) handleDiSPG(w http.ResponseWriter, r *http.Request) {
	pStart := time.Now()
	u, v, ok := s.pair(w, r)
	if !ok {
		return
	}
	markParse(r, pStart)
	spg, st := s.di.QueryWithStats(u, v)
	s.recordDiQuery(r, u, v, st)
	resp := SPGResponse{Source: u, Target: v, Directed: true, Coverage: "directed"}
	if spg.Dist == qbs.InfDist {
		resp.Disconnected = true
	} else {
		d := spg.Dist
		resp.Distance = &d
		if st.DTop != qbs.InfDist {
			dt := st.DTop
			resp.DTop = &dt
		}
		resp.Vertices = spg.Vertices()
		for _, a := range spg.Arcs() {
			resp.Edges = append(resp.Edges, [2]int32{a.From, a.To})
		}
		resp.NumPaths, resp.NumPathsSaturated = analysis.CountDiPaths(spg,
			func(x qbs.V) int32 { return s.di.Distance(u, x) })
	}
	writeJSONTraced(w, r, http.StatusOK, resp)
}

func (s *Server) handleDiDistance(w http.ResponseWriter, r *http.Request) {
	u, v, ok := s.pair(w, r)
	if !ok {
		return
	}
	d := s.di.Distance(u, v)
	resp := DistanceResponse{Source: u, Target: v}
	if d == qbs.InfDist {
		resp.Disconnected = true
	} else {
		resp.Distance = &d
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDiSketch(w http.ResponseWriter, r *http.Request) {
	u, v, ok := s.pair(w, r)
	if !ok {
		return
	}
	sk := s.di.Sketch(u, v)
	resp := SketchResponse{Source: u, Target: v, Landmarks: s.di.Landmarks()}
	if sk.DTop != qbs.InfDist {
		dt := sk.DTop
		resp.DTop = &dt
		for _, p := range sk.Pairs {
			resp.Pairs = append(resp.Pairs, [2]int32{
				s.di.Landmarks()[p.R], s.di.Landmarks()[p.RPrime],
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDiStats(w http.ResponseWriter, _ *http.Request) {
	g := s.di.Graph()
	st := s.di.Stats()
	nv := g.NumVertices()
	resp := StatsResponse{
		Vertices:       nv,
		Edges:          g.NumArcs(),
		NumLandmarks:   len(s.di.Landmarks()),
		Landmarks:      s.di.Landmarks(),
		LabelEntries:   st.LabelEntries,
		MetaEdges:      st.MetaArcs,
		SizeLabels:     s.di.SizeLabelsBytes(),
		SizeDelta:      s.di.SizeDeltaBytes(),
		LabellingMS:    float64(st.LabellingTime.Microseconds()) / 1000,
		ConstructionMS: float64(st.TotalTime.Microseconds()) / 1000,
		Directed:       true,
	}
	if nv > 0 {
		resp.AvgDegree = float64(g.NumArcs()) / float64(nv)
	}
	writeJSON(w, http.StatusOK, resp)
}

// EdgeRequest is the JSON body of POST /edges. Pointer fields make
// missing keys detectable: a body that omits u or v is rejected rather
// than silently defaulting to vertex 0.
type EdgeRequest struct {
	U *int32 `json:"u"`
	V *int32 `json:"v"`
}

// EdgeResponse is the JSON body of POST /edges and DELETE /edges.
type EdgeResponse struct {
	Applied bool   `json:"applied"`
	Epoch   uint64 `json:"epoch"`
	Edges   int    `json:"edges"`
}

func (s *Server) handleAddEdge(w http.ResponseWriter, r *http.Request) {
	if !s.boundBody(w, r) {
		return
	}
	var req EdgeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.U == nil || req.V == nil {
		// A chunked body with no Content-Length slips past boundBody's
		// up-front check and trips MaxBytesReader mid-decode instead.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{
				Error: fmt.Sprintf("request body exceeds the %d-byte limit", maxWriteBody),
			})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "body must be {\"u\":<id>,\"v\":<id>}"})
		return
	}
	s.applyEdge(w, r, qbs.V(*req.U), qbs.V(*req.V), true)
}

func (s *Server) handleRemoveEdge(w http.ResponseWriter, r *http.Request) {
	if !s.drainBounded(w, r) {
		return
	}
	u, v, ok := s.pair(w, r)
	if !ok {
		return
	}
	s.applyEdge(w, r, u, v, false)
}

func (s *Server) applyEdge(w http.ResponseWriter, r *http.Request, u, v qbs.V, insert bool) {
	if u < 0 || int(u) >= s.b.NumVertices() || v < 0 || int(v) >= s.b.NumVertices() || u == v {
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("edge {%d,%d} invalid: endpoints must be distinct ids in [0,%d)", u, v, s.b.NumVertices()),
		})
		return
	}
	res, err := s.dyn.ApplyEdgeCtx(r.Context(), u, v, insert)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, qbs.ErrDiameterTooLarge) {
			status = http.StatusUnprocessableEntity
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, EdgeResponse{
		Applied: res.Applied,
		Epoch:   res.Epoch,
		Edges:   res.Edges,
	})
}

// CheckpointResponse is the JSON body of POST /checkpoint.
type CheckpointResponse struct {
	Epoch uint64 `json:"epoch"`
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !s.drainBounded(w, r) {
		return
	}
	if !s.dyn.Durable() {
		writeJSON(w, http.StatusConflict, errorBody{
			Error: "server has no durable store (start it with a data directory to enable checkpoints)",
		})
		return
	}
	sp := traceSpans(r).StartSpan("checkpoint")
	epoch, err := s.dyn.Checkpoint()
	if err != nil {
		sp.Fail()
		sp.End()
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	sp.End()
	writeJSON(w, http.StatusOK, CheckpointResponse{Epoch: epoch})
}

// EpochResponse is the JSON body of GET /epoch.
type EpochResponse struct {
	Epoch uint64 `json:"epoch"`
	Edges int    `json:"edges"`
}

func (s *Server) handleEpoch(w http.ResponseWriter, _ *http.Request) {
	epoch, edges := s.dyn.EpochEdges()
	writeJSON(w, http.StatusOK, EpochResponse{Epoch: epoch, Edges: edges})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}
