// Package server exposes a QbS index over HTTP with a small JSON API —
// the deployment shape a production user of the library would run:
// build (or load) the index once, then serve shortest-path-graph
// queries at microsecond latency.
//
// Endpoints:
//
//	GET /spg?u=<id>&v=<id>        the shortest path graph of the pair
//	GET /distance?u=<id>&v=<id>   just the distance
//	GET /sketch?u=<id>&v=<id>     the query sketch (d⊤, minimizing pairs)
//	GET /paths?u=<id>&v=<id>&limit=<n>  enumerated shortest paths
//	GET /stats                    index and graph statistics
//	GET /healthz                  liveness
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"qbs"
	"qbs/internal/analysis"
)

// Server handles the HTTP API over one immutable index.
type Server struct {
	index *qbs.Index
	mux   *http.ServeMux
}

// New creates a server for the given index.
func New(index *qbs.Index) *Server {
	s := &Server{index: index, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /spg", s.handleSPG)
	s.mux.HandleFunc("GET /distance", s.handleDistance)
	s.mux.HandleFunc("GET /sketch", s.handleSketch)
	s.mux.HandleFunc("GET /paths", s.handlePaths)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) pair(w http.ResponseWriter, r *http.Request) (u, v qbs.V, ok bool) {
	parse := func(name string) (qbs.V, bool) {
		raw := r.URL.Query().Get(name)
		id, err := strconv.Atoi(raw)
		if err != nil || id < 0 || id >= s.index.Graph().NumVertices() {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("parameter %q must be a vertex id in [0,%d), got %q",
					name, s.index.Graph().NumVertices(), raw),
			})
			return 0, false
		}
		return qbs.V(id), true
	}
	u, ok = parse("u")
	if !ok {
		return
	}
	v, ok = parse("v")
	return
}

// SPGResponse is the JSON body of /spg.
type SPGResponse struct {
	Source       int32      `json:"source"`
	Target       int32      `json:"target"`
	Distance     *int32     `json:"distance"` // null when disconnected
	Vertices     []int32    `json:"vertices"`
	Edges        [][2]int32 `json:"edges"`
	NumPaths     int64      `json:"num_shortest_paths"`
	DTop         *int32     `json:"d_top"`
	ArcsScanned  int64      `json:"arcs_scanned"`
	Coverage     string     `json:"coverage"`
	Disconnected bool       `json:"disconnected"`
}

func coverageName(c qbs.QueryStats) string {
	switch c.Coverage {
	case qbs.CoverageAll:
		return "all"
	case qbs.CoverageSome:
		return "some"
	case qbs.CoverageNone:
		return "none"
	default:
		return "trivial"
	}
}

func (s *Server) handleSPG(w http.ResponseWriter, r *http.Request) {
	u, v, ok := s.pair(w, r)
	if !ok {
		return
	}
	spg, st := s.index.QueryWithStats(u, v)
	resp := SPGResponse{
		Source:      u,
		Target:      v,
		ArcsScanned: st.ArcsScanned,
		Coverage:    coverageName(st),
	}
	if spg.Dist == qbs.InfDist {
		resp.Disconnected = true
	} else {
		d := spg.Dist
		resp.Distance = &d
		if st.DTop != qbs.InfDist {
			dt := st.DTop
			resp.DTop = &dt
		}
		resp.Vertices = spg.Vertices()
		for _, e := range spg.Edges() {
			resp.Edges = append(resp.Edges, [2]int32{e.U, e.W})
		}
		if dag := analysis.BuildDAG(spg, func(x qbs.V) int32 { return s.index.Distance(u, x) }); dag != nil {
			resp.NumPaths = dag.CountPaths()
		} else if u == v {
			resp.NumPaths = 1
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// DistanceResponse is the JSON body of /distance.
type DistanceResponse struct {
	Source       int32  `json:"source"`
	Target       int32  `json:"target"`
	Distance     *int32 `json:"distance"`
	Disconnected bool   `json:"disconnected"`
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	u, v, ok := s.pair(w, r)
	if !ok {
		return
	}
	d := s.index.Distance(u, v)
	resp := DistanceResponse{Source: u, Target: v}
	if d == qbs.InfDist {
		resp.Disconnected = true
	} else {
		resp.Distance = &d
	}
	writeJSON(w, http.StatusOK, resp)
}

// SketchResponse is the JSON body of /sketch.
type SketchResponse struct {
	Source    int32      `json:"source"`
	Target    int32      `json:"target"`
	DTop      *int32     `json:"d_top"`
	Pairs     [][2]int32 `json:"minimizing_landmark_pairs"` // landmark vertex ids
	Landmarks []int32    `json:"landmarks"`
}

func (s *Server) handleSketch(w http.ResponseWriter, r *http.Request) {
	u, v, ok := s.pair(w, r)
	if !ok {
		return
	}
	sk := s.index.Sketch(u, v)
	resp := SketchResponse{Source: u, Target: v, Landmarks: s.index.Landmarks()}
	if sk.DTop != qbs.InfDist {
		dt := sk.DTop
		resp.DTop = &dt
		for _, p := range sk.Pairs {
			resp.Pairs = append(resp.Pairs, [2]int32{
				s.index.Landmarks()[p.R], s.index.Landmarks()[p.RPrime],
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// PathsResponse is the JSON body of /paths.
type PathsResponse struct {
	Source    int32     `json:"source"`
	Target    int32     `json:"target"`
	Distance  *int32    `json:"distance"`
	NumPaths  int64     `json:"num_shortest_paths"`
	Paths     [][]int32 `json:"paths"`
	Truncated bool      `json:"truncated"`
}

func (s *Server) handlePaths(w http.ResponseWriter, r *http.Request) {
	u, v, ok := s.pair(w, r)
	if !ok {
		return
	}
	limit := 16
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > 1024 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "limit must be in [1,1024]"})
			return
		}
		limit = n
	}
	spg := s.index.Query(u, v)
	resp := PathsResponse{Source: u, Target: v}
	if spg.Dist != qbs.InfDist && u != v {
		d := spg.Dist
		resp.Distance = &d
		dag := analysis.BuildDAG(spg, func(x qbs.V) int32 { return s.index.Distance(u, x) })
		if dag != nil {
			resp.NumPaths = dag.CountPaths()
			for _, p := range dag.EnumeratePaths(limit) {
				resp.Paths = append(resp.Paths, p)
			}
			resp.Truncated = resp.NumPaths > int64(len(resp.Paths))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatsResponse is the JSON body of /stats.
type StatsResponse struct {
	Vertices       int     `json:"vertices"`
	Edges          int     `json:"edges"`
	AvgDegree      float64 `json:"avg_degree"`
	NumLandmarks   int     `json:"num_landmarks"`
	Landmarks      []int32 `json:"landmarks"`
	LabelEntries   int64   `json:"label_entries"`
	MetaEdges      int     `json:"meta_edges"`
	SizeLabels     int64   `json:"size_labels_bytes"`
	SizeDelta      int64   `json:"size_delta_bytes"`
	LabellingMS    float64 `json:"labelling_ms"`
	ConstructionMS float64 `json:"construction_ms"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	g := s.index.Graph()
	st := s.index.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Vertices:       g.NumVertices(),
		Edges:          g.NumEdges(),
		AvgDegree:      g.AvgDegree(),
		NumLandmarks:   st.NumLandmarks,
		Landmarks:      s.index.Landmarks(),
		LabelEntries:   st.LabelEntries,
		MetaEdges:      st.MetaEdges,
		SizeLabels:     s.index.SizeLabelsBytes(),
		SizeDelta:      s.index.SizeDeltaBytes(),
		LabellingMS:    float64(st.LabellingTime.Microseconds()) / 1000,
		ConstructionMS: float64(st.TotalTime.Microseconds()) / 1000,
	})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}
