package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"qbs"
	"qbs/internal/graph"
)

// testServer builds a server over the diamond-with-detour fixture:
// 0-1-3, 0-2-3 (two shortest 0–3 paths) and 0-4-5-3 (a longer detour),
// plus isolated vertex 6.
func testServer(t *testing.T) *Server {
	t.Helper()
	g := graph.MustFromEdges(7, []graph.Edge{
		{U: 0, W: 1}, {U: 1, W: 3}, {U: 0, W: 2}, {U: 2, W: 3},
		{U: 0, W: 4}, {U: 4, W: 5}, {U: 5, W: 3},
	})
	ix, err := qbs.BuildIndex(g, qbs.Options{NumLandmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	return New(ix)
}

func get(t *testing.T, s *Server, path string, out any) *http.Response {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	resp := rec.Result()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp
}

func TestSPGEndpoint(t *testing.T) {
	s := testServer(t)
	var resp SPGResponse
	if r := get(t, s, "/spg?u=0&v=3", &resp); r.StatusCode != 200 {
		t.Fatalf("status %d", r.StatusCode)
	}
	if resp.Distance == nil || *resp.Distance != 2 {
		t.Fatalf("distance = %v", resp.Distance)
	}
	if len(resp.Edges) != 4 {
		t.Fatalf("edges = %v", resp.Edges)
	}
	if resp.NumPaths != 2 {
		t.Fatalf("num paths = %d", resp.NumPaths)
	}
	if resp.Coverage == "" {
		t.Fatal("coverage missing")
	}
}

func TestSPGDisconnected(t *testing.T) {
	s := testServer(t)
	var resp SPGResponse
	get(t, s, "/spg?u=0&v=6", &resp)
	if !resp.Disconnected || resp.Distance != nil || len(resp.Edges) != 0 {
		t.Fatalf("disconnected response: %+v", resp)
	}
}

func TestSPGBadParams(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{"/spg", "/spg?u=0", "/spg?u=0&v=99", "/spg?u=x&v=1", "/spg?u=-1&v=1"} {
		if r := get(t, s, path, nil); r.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", path, r.StatusCode)
		}
	}
}

func TestDistanceEndpoint(t *testing.T) {
	s := testServer(t)
	var resp DistanceResponse
	get(t, s, "/distance?u=4&v=3", &resp)
	if resp.Distance == nil || *resp.Distance != 2 {
		t.Fatalf("distance = %v", resp.Distance)
	}
	get(t, s, "/distance?u=6&v=0", &resp)
	if !resp.Disconnected {
		t.Fatal("expected disconnected")
	}
}

func TestSketchEndpoint(t *testing.T) {
	s := testServer(t)
	var resp SketchResponse
	get(t, s, "/sketch?u=1&v=2", &resp)
	if resp.DTop == nil {
		t.Fatal("d_top missing")
	}
	if len(resp.Landmarks) != 2 {
		t.Fatalf("landmarks = %v", resp.Landmarks)
	}
}

func TestPathsEndpoint(t *testing.T) {
	s := testServer(t)
	var resp PathsResponse
	get(t, s, "/paths?u=0&v=3", &resp)
	if resp.NumPaths != 2 || len(resp.Paths) != 2 || resp.Truncated {
		t.Fatalf("paths response: %+v", resp)
	}
	get(t, s, "/paths?u=0&v=3&limit=1", &resp)
	if len(resp.Paths) != 1 || !resp.Truncated {
		t.Fatalf("limit response: %+v", resp)
	}
	if r := get(t, s, "/paths?u=0&v=3&limit=0", nil); r.StatusCode != 400 {
		t.Fatal("limit=0 accepted")
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := testServer(t)
	var resp StatsResponse
	get(t, s, "/stats", &resp)
	if resp.Vertices != 7 || resp.NumLandmarks != 2 || resp.LabelEntries <= 0 {
		t.Fatalf("stats: %+v", resp)
	}
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	if r := get(t, s, "/healthz", nil); r.StatusCode != 200 {
		t.Fatalf("healthz status %d", r.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("POST", "/spg?u=0&v=3", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Result().StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", rec.Result().StatusCode)
	}
}

// ---------------------------------------------------------------------
// Mutable-mode tests.

// testMutableServer serves the same diamond fixture over a dynamic
// index.
func testMutableServer(t *testing.T) (*Server, *qbs.DynamicIndex) {
	t.Helper()
	g := graph.MustFromEdges(7, []graph.Edge{
		{U: 0, W: 1}, {U: 1, W: 3}, {U: 0, W: 2}, {U: 2, W: 3},
		{U: 0, W: 4}, {U: 4, W: 5}, {U: 5, W: 3},
	})
	di, err := qbs.BuildDynamicIndex(g, qbs.DynamicOptions{Index: qbs.Options{NumLandmarks: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return NewMutable(di), di
}

func do(t *testing.T, s *Server, method, path, body string, out any) *http.Response {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	resp := rec.Result()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s %s: %v", method, path, err)
		}
	}
	return resp
}

func TestWriteEndpoints(t *testing.T) {
	s, _ := testMutableServer(t)

	// Initial epoch.
	var ep EpochResponse
	if r := do(t, s, "GET", "/epoch", "", &ep); r.StatusCode != 200 {
		t.Fatalf("epoch status %d", r.StatusCode)
	}
	if ep.Epoch != 0 || ep.Edges != 7 {
		t.Fatalf("epoch = %+v", ep)
	}

	// Insert a shortcut 1-2: distance 1-2 drops from 2 to 1.
	var er EdgeResponse
	if r := do(t, s, "POST", "/edges", `{"u":1,"v":2}`, &er); r.StatusCode != 200 {
		t.Fatalf("post status %d", r.StatusCode)
	}
	if !er.Applied || er.Epoch != 1 || er.Edges != 8 {
		t.Fatalf("post response %+v", er)
	}
	var dr DistanceResponse
	do(t, s, "GET", "/distance?u=1&v=2", "", &dr)
	if dr.Distance == nil || *dr.Distance != 1 {
		t.Fatalf("distance after insert = %+v", dr)
	}

	// Idempotent re-insert: applied=false, epoch unchanged.
	if r := do(t, s, "POST", "/edges", `{"u":2,"v":1}`, &er); r.StatusCode != 200 {
		t.Fatalf("status %d", r.StatusCode)
	}
	if er.Applied || er.Epoch != 1 {
		t.Fatalf("re-insert response %+v", er)
	}

	// Delete both 0-3 two-hop paths: the detour 0-4-5-3 takes over.
	do(t, s, "DELETE", "/edges?u=1&v=3", "", &er)
	do(t, s, "DELETE", "/edges?u=2&v=3", "", &er)
	if !er.Applied || er.Edges != 6 {
		t.Fatalf("delete response %+v", er)
	}
	var spg SPGResponse
	do(t, s, "GET", "/spg?u=0&v=3", "", &spg)
	if spg.Distance == nil || *spg.Distance != 3 || spg.NumPaths != 1 {
		t.Fatalf("spg after deletes = %+v", spg)
	}

	// Deleting an absent edge is a no-op.
	do(t, s, "DELETE", "/edges?u=1&v=3", "", &er)
	if er.Applied {
		t.Fatal("deleting absent edge reported applied")
	}

	// Bad requests.
	if r := do(t, s, "POST", "/edges", `{"u":1,"v":1}`, nil); r.StatusCode != 400 {
		t.Fatalf("self-loop status %d", r.StatusCode)
	}
	if r := do(t, s, "POST", "/edges", `{"u":1,"v":99}`, nil); r.StatusCode != 400 {
		t.Fatalf("out-of-range status %d", r.StatusCode)
	}
	if r := do(t, s, "POST", "/edges", `not json`, nil); r.StatusCode != 400 {
		t.Fatalf("bad body status %d", r.StatusCode)
	}

	// Stats reports mutable mode and counters.
	var st StatsResponse
	do(t, s, "GET", "/stats", "", &st)
	if !st.Mutable || st.Dynamic == nil {
		t.Fatalf("stats = %+v", st)
	}
	if st.Dynamic.Inserts != 1 || st.Dynamic.Deletes != 2 {
		t.Fatalf("dynamic stats = %+v", st.Dynamic)
	}
}

func TestEdgesWrongMethod(t *testing.T) {
	s, _ := testMutableServer(t)
	for _, method := range []string{"PUT", "PATCH", "GET", "HEAD"} {
		req := httptest.NewRequest(method, "/edges", strings.NewReader(`{"u":1,"v":2}`))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		resp := rec.Result()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s /edges: status %d, want 405", method, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "POST, DELETE" {
			t.Fatalf("%s /edges: Allow = %q, want \"POST, DELETE\"", method, allow)
		}
	}
	// The allowed methods still work (the catch-all must not shadow them).
	var er EdgeResponse
	if r := do(t, s, "POST", "/edges", `{"u":1,"v":2}`, &er); r.StatusCode != 200 || !er.Applied {
		t.Fatalf("POST /edges broken by catch-all: status %d applied %v", r.StatusCode, er.Applied)
	}
	if r := do(t, s, "DELETE", "/edges?u=1&v=2", "", &er); r.StatusCode != 200 || !er.Applied {
		t.Fatalf("DELETE /edges broken by catch-all: status %d applied %v", r.StatusCode, er.Applied)
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	// Without a durable store: 409.
	s, _ := testMutableServer(t)
	if r := do(t, s, "POST", "/checkpoint", "", nil); r.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint without store: status %d, want 409", r.StatusCode)
	}

	// With one: persists and reports the epoch; the store can be reopened.
	dir := t.TempDir()
	g := graph.MustFromEdges(7, []graph.Edge{
		{U: 0, W: 1}, {U: 1, W: 3}, {U: 0, W: 2}, {U: 2, W: 3},
		{U: 0, W: 4}, {U: 4, W: 5}, {U: 5, W: 3},
	})
	di, err := qbs.CreateStore(dir, g, qbs.StoreOptions{Index: qbs.Options{NumLandmarks: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ds := NewMutable(di)
	var er EdgeResponse
	do(t, ds, "POST", "/edges", `{"u":1,"v":2}`, &er)
	var cp CheckpointResponse
	if r := do(t, ds, "POST", "/checkpoint", "", &cp); r.StatusCode != 200 {
		t.Fatalf("checkpoint status %d", r.StatusCode)
	}
	if cp.Epoch != 1 {
		t.Fatalf("checkpoint epoch %d, want 1", cp.Epoch)
	}
	if err := di.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := qbs.OpenStore(dir, qbs.StoreOptions{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Epoch() != 1 || !re.HasEdge(1, 2) {
		t.Fatalf("reopened store: epoch %d hasEdge %v", re.Epoch(), re.HasEdge(1, 2))
	}
}

func TestDynamicReadOnlyServer(t *testing.T) {
	_, di := testMutableServer(t)
	if _, err := di.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	s := NewDynamicReadOnly(di)
	var dr DistanceResponse
	if r := do(t, s, "GET", "/distance?u=0&v=3", "", &dr); r.StatusCode != 200 || dr.Distance == nil {
		t.Fatalf("read-only dynamic server query failed: %+v", dr)
	}
	// Observability stays on: the operator can confirm the recovered
	// epoch even though writes are withheld.
	var ep EpochResponse
	if r := do(t, s, "GET", "/epoch", "", &ep); r.StatusCode != 200 || ep.Epoch != 1 {
		t.Fatalf("read-only /epoch: status %d resp %+v", r.StatusCode, ep)
	}
	var st StatsResponse
	if r := do(t, s, "GET", "/stats", "", &st); r.StatusCode != 200 || st.Dynamic == nil || st.Mutable {
		t.Fatalf("read-only /stats: status %d mutable=%v dynamic=%v", r.StatusCode, st.Mutable, st.Dynamic)
	}
	if r := do(t, s, "POST", "/edges", `{"u":1,"v":2}`, nil); r.StatusCode == 200 {
		t.Fatal("read-only dynamic server accepted a write")
	}
	if r := do(t, s, "POST", "/checkpoint", "", nil); r.StatusCode == 200 {
		t.Fatal("read-only dynamic server accepted a checkpoint")
	}
}

func TestWriteEndpointsAbsentOnImmutable(t *testing.T) {
	s := testServer(t)
	if r := do(t, s, "POST", "/edges", `{"u":1,"v":2}`, nil); r.StatusCode == 200 {
		t.Fatal("immutable server accepted a write")
	}
	if r := do(t, s, "GET", "/epoch", "", nil); r.StatusCode == 200 {
		t.Fatal("immutable server served /epoch")
	}
}

// ---------------------------------------------------------------------
// PR 4 regression tests: /paths bounds and trivial pair, missing
// parameters, path-count saturation, directed mode.

// TestPathsLimitBounds sweeps the limit parameter across the accepted
// range's borders and junk values.
func TestPathsLimitBounds(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		limit  string
		status int
	}{
		{"0", 400},
		{"1", 200},
		{"1024", 200},
		{"1025", 400},
		{"-3", 400},
		{"junk", 400},
		{"", 200}, // absent: default 16
		{"2", 200},
	}
	for _, c := range cases {
		path := "/paths?u=0&v=3"
		if c.limit != "" {
			path += "&limit=" + c.limit
		}
		var resp PathsResponse
		r := get(t, s, path, &resp)
		if r.StatusCode != c.status {
			t.Fatalf("limit=%q: status %d, want %d", c.limit, r.StatusCode, c.status)
		}
		if c.status != 200 {
			continue
		}
		// The fixture pair has 2 shortest paths; the truncation flag must
		// agree with how many the limit let through.
		if resp.NumPaths != 2 {
			t.Fatalf("limit=%q: num paths %d, want 2", c.limit, resp.NumPaths)
		}
		wantPaths := 2
		if c.limit == "1" {
			wantPaths = 1
		}
		if len(resp.Paths) != wantPaths || resp.Truncated != (wantPaths < 2) {
			t.Fatalf("limit=%q: %d paths truncated=%v", c.limit, len(resp.Paths), resp.Truncated)
		}
	}
}

// TestPathsTrivialPair is the u == v fix: /paths must agree with /spg
// (distance 0, one path — the single vertex), not report a null
// distance and no paths.
func TestPathsTrivialPair(t *testing.T) {
	s := testServer(t)
	var resp PathsResponse
	if r := get(t, s, "/paths?u=2&v=2", &resp); r.StatusCode != 200 {
		t.Fatalf("status %d", r.StatusCode)
	}
	if resp.Distance == nil || *resp.Distance != 0 {
		t.Fatalf("trivial distance = %v, want 0", resp.Distance)
	}
	if resp.NumPaths != 1 || len(resp.Paths) != 1 || resp.Truncated {
		t.Fatalf("trivial paths response: %+v", resp)
	}
	if len(resp.Paths[0]) != 1 || resp.Paths[0][0] != 2 {
		t.Fatalf("trivial path = %v, want [2]", resp.Paths[0])
	}
	// /spg agrees.
	var spg SPGResponse
	get(t, s, "/spg?u=2&v=2", &spg)
	if spg.Distance == nil || *spg.Distance != 0 || spg.NumPaths != 1 {
		t.Fatalf("/spg trivial pair disagrees: %+v", spg)
	}
}

// TestMissingParameterMessage is the parseVertex fix: an absent u/v must
// be reported as missing, not as `got ""`.
func TestMissingParameterMessage(t *testing.T) {
	s := testServer(t)
	for _, c := range []struct {
		path string
		want string
	}{
		{"/spg?v=1", `missing required parameter "u"`},
		{"/spg?u=1", `missing required parameter "v"`},
		{"/distance", `missing required parameter "u"`},
		{"/paths?u=1", `missing required parameter "v"`},
	} {
		req := httptest.NewRequest("GET", c.path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", c.path, rec.Code)
		}
		var eb errorBody
		if err := json.NewDecoder(rec.Body).Decode(&eb); err != nil {
			t.Fatal(err)
		}
		if eb.Error != c.want {
			t.Fatalf("%s: error %q, want %q", c.path, eb.Error, c.want)
		}
		if strings.Contains(eb.Error, `got ""`) {
			t.Fatalf("%s: still reports the confusing empty got", c.path)
		}
	}
	// A malformed (present) value keeps the descriptive range message.
	req := httptest.NewRequest("GET", "/spg?u=zzz&v=1", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var eb errorBody
	_ = json.NewDecoder(rec.Body).Decode(&eb)
	if !strings.Contains(eb.Error, `got "zzz"`) {
		t.Fatalf("malformed value error lost its context: %q", eb.Error)
	}
}

// pathSaturationServer serves a 64-diamond chain whose source/sink pair
// has 2^64 shortest paths.
func pathSaturationServer(t *testing.T) (*Server, qbs.V, qbs.V) {
	t.Helper()
	const d = 64
	b := qbs.NewBuilder((d + 1) + 2*d)
	junction := func(i int) qbs.V { return qbs.V(i * 3) }
	for i := 0; i < d; i++ {
		j0, j1 := junction(i), junction(i+1)
		a, c := qbs.V(i*3+1), qbs.V(i*3+2)
		b.AddEdge(j0, a)
		b.AddEdge(j0, c)
		b.AddEdge(a, j1)
		b.AddEdge(c, j1)
	}
	g := b.MustBuild()
	ix, err := qbs.BuildIndex(g, qbs.Options{NumLandmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	return New(ix), junction(0), junction(d)
}

// TestPathCountSaturationOverHTTP is the end-to-end overflow
// regression: 2^64 shortest paths used to surface as a negative
// num_shortest_paths with an inverted truncated flag.
func TestPathCountSaturationOverHTTP(t *testing.T) {
	s, u, v := pathSaturationServer(t)
	var spg SPGResponse
	get(t, s, fmt.Sprintf("/spg?u=%d&v=%d", u, v), &spg)
	if spg.NumPaths < 0 {
		t.Fatalf("/spg reports negative path count %d", spg.NumPaths)
	}
	if spg.NumPaths != math.MaxInt64 || !spg.NumPathsSaturated {
		t.Fatalf("/spg: count %d saturated %v, want MaxInt64 saturated", spg.NumPaths, spg.NumPathsSaturated)
	}
	var paths PathsResponse
	get(t, s, fmt.Sprintf("/paths?u=%d&v=%d&limit=4", u, v), &paths)
	if paths.NumPaths != math.MaxInt64 || !paths.NumPathsSaturated {
		t.Fatalf("/paths: count %d saturated %v", paths.NumPaths, paths.NumPathsSaturated)
	}
	if len(paths.Paths) != 4 || !paths.Truncated {
		t.Fatalf("/paths: %d paths truncated=%v, want 4 truncated", len(paths.Paths), paths.Truncated)
	}
}

// ---------------------------------------------------------------------
// Directed-mode tests.

// testDirectedServer fronts the directed diamond 0→1→3, 0→2→3 with the
// extension 3→4 and back-arc 4→0; vertex 5 is unreachable from 0.
func testDirectedServer(t *testing.T) *Server {
	t.Helper()
	b := qbs.NewDiBuilder(6)
	b.AddArc(0, 1)
	b.AddArc(0, 2)
	b.AddArc(1, 3)
	b.AddArc(2, 3)
	b.AddArc(3, 4)
	b.AddArc(4, 0)
	b.AddArc(5, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := qbs.BuildDiIndex(g, qbs.DiOptions{NumLandmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	return NewDirected(ix)
}

func TestDirectedSPGEndpoint(t *testing.T) {
	s := testDirectedServer(t)
	var resp SPGResponse
	if r := get(t, s, "/spg?u=0&v=3", &resp); r.StatusCode != 200 {
		t.Fatalf("status %d", r.StatusCode)
	}
	if !resp.Directed {
		t.Fatal("directed flag missing")
	}
	if resp.Distance == nil || *resp.Distance != 2 || len(resp.Edges) != 4 || resp.NumPaths != 2 {
		t.Fatalf("directed diamond: %+v", resp)
	}
	// Arc orientation: every reported pair must be a real arc u→w.
	for _, a := range resp.Edges {
		if a[0] == 3 || a[1] == 0 {
			t.Fatalf("arc %v violates orientation", a)
		}
	}
	// The reverse pair takes the long way around through 4→0.
	get(t, s, "/spg?u=3&v=0", &resp)
	if resp.Distance == nil || *resp.Distance != 2 {
		t.Fatalf("reverse distance: %+v", resp)
	}
	// Unreachable direction.
	get(t, s, "/spg?u=0&v=5", &resp)
	if !resp.Disconnected {
		t.Fatalf("0→5 must be unreachable: %+v", resp)
	}
}

func TestDirectedDistanceAsymmetry(t *testing.T) {
	s := testDirectedServer(t)
	var a, b DistanceResponse
	get(t, s, "/distance?u=0&v=4", &a)
	get(t, s, "/distance?u=4&v=0", &b)
	if a.Distance == nil || b.Distance == nil {
		t.Fatal("distances missing")
	}
	if *a.Distance != 3 || *b.Distance != 1 {
		t.Fatalf("d(0→4)=%d d(4→0)=%d, want 3 and 1", *a.Distance, *b.Distance)
	}
}

func TestDirectedSketchAndStats(t *testing.T) {
	s := testDirectedServer(t)
	var sk SketchResponse
	if r := get(t, s, "/sketch?u=1&v=4", &sk); r.StatusCode != 200 {
		t.Fatalf("sketch status %d", r.StatusCode)
	}
	if len(sk.Landmarks) != 2 {
		t.Fatalf("landmarks = %v", sk.Landmarks)
	}
	var st StatsResponse
	get(t, s, "/stats", &st)
	if !st.Directed || st.Vertices != 6 || st.Edges != 7 || st.NumLandmarks != 2 {
		t.Fatalf("directed stats: %+v", st)
	}
	if st.SizeLabels != 2*6*2 {
		t.Fatalf("size labels = %d", st.SizeLabels)
	}
}

func TestDirectedServerOmitsPathsAndWrites(t *testing.T) {
	s := testDirectedServer(t)
	if r := get(t, s, "/paths?u=0&v=3", nil); r.StatusCode == 200 {
		t.Fatal("directed server served /paths")
	}
	if r := do(t, s, "POST", "/edges", `{"u":1,"v":2}`, nil); r.StatusCode == 200 {
		t.Fatal("directed server accepted a write")
	}
	if r := get(t, s, "/healthz", nil); r.StatusCode != 200 {
		t.Fatal("healthz missing in directed mode")
	}
	// Parameter validation shares the fixed missing/malformed messages.
	req := httptest.NewRequest("GET", "/spg?v=1", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var eb errorBody
	_ = json.NewDecoder(rec.Body).Decode(&eb)
	if rec.Code != 400 || eb.Error != `missing required parameter "u"` {
		t.Fatalf("directed missing param: %d %q", rec.Code, eb.Error)
	}
}

// ---------------------------------------------------------------------
// PR 5 satellites: bounded write bodies, /metrics, min_epoch.

func TestWriteBodyTooLarge(t *testing.T) {
	s, _ := testMutableServer(t)
	huge := strings.Repeat("x", (64<<10)+1)
	for _, tc := range []struct{ method, path string }{
		{"POST", "/edges"},
		{"DELETE", "/edges?u=0&v=1"},
		{"POST", "/checkpoint"},
	} {
		resp := do(t, s, tc.method, tc.path, huge, nil)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s %s with %d-byte body: status %d, want 413", tc.method, tc.path, len(huge), resp.StatusCode)
		}
		var body errorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
			t.Fatalf("%s %s: 413 without the JSON error envelope (%v)", tc.method, tc.path, err)
		}
	}
	// A body just under the limit still parses (and fails on content,
	// not size).
	pad := strings.Repeat(" ", 60<<10)
	if resp := do(t, s, "POST", "/edges", pad+`{"u":1,"v":2}`, nil); resp.StatusCode != 200 {
		t.Fatalf("under-limit body: status %d", resp.StatusCode)
	}
}

// TestWriteBodyTooLargeChunked repeats the 413 check with bodies that
// carry no Content-Length (the chunked-transfer shape): the up-front
// length check cannot see them, so the bound must trip while reading.
func TestWriteBodyTooLargeChunked(t *testing.T) {
	s, _ := testMutableServer(t)
	for _, tc := range []struct{ method, path string }{
		{"POST", "/edges"},
		{"DELETE", "/edges?u=0&v=1"},
		{"POST", "/checkpoint"},
	} {
		// Wrapping the reader hides its length from httptest.NewRequest,
		// leaving ContentLength unset as with a chunked upload. The body
		// is oversized JSON whitespace so the decoder (POST /edges) must
		// read through the limit rather than bail on a syntax error.
		body := struct{ io.Reader }{strings.NewReader(strings.Repeat(" ", (64<<10)+1) + `{"u":1,"v":2}`)}
		req := httptest.NewRequest(tc.method, tc.path, body)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s %s chunked oversized body: status %d, want 413", tc.method, tc.path, rec.Code)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, di := testMutableServer(t)

	do(t, s, "GET", "/distance?u=0&v=3", "", nil)
	do(t, s, "GET", "/distance?u=0&v=3", "", nil)
	do(t, s, "GET", "/distance?u=bad&v=3", "", nil) // 400 → error counter
	do(t, s, "POST", "/edges", `{"u":1,"v":2}`, nil)

	var m MetricsResponse
	if r := do(t, s, "GET", "/metrics", "", &m); r.StatusCode != 200 {
		t.Fatalf("/metrics status %d", r.StatusCode)
	}
	d := m.Endpoints["/distance"]
	if d.Requests != 3 || d.Errors != 1 {
		t.Fatalf("/distance counters = %+v", d)
	}
	e := m.Endpoints["/edges"]
	if e.Requests != 1 || e.Errors != 0 {
		t.Fatalf("/edges counters = %+v", e)
	}
	if m.Epoch == nil || *m.Epoch != di.Epoch() {
		t.Fatalf("metrics epoch = %v, index at %d", m.Epoch, di.Epoch())
	}
	if m.Replication != nil {
		t.Fatal("non-replica server reported a replication section")
	}

	// With a lag provider attached (the replica shape), the replication
	// section appears, epochs-lag saturating at the provider's values.
	s.SetReplicationStatus(func() ReplicationStatus {
		return ReplicationStatus{PrimaryEpoch: di.Epoch() + 3, Epoch: di.Epoch(), LagBytes: 75}
	})
	if r := do(t, s, "GET", "/metrics", "", &m); r.StatusCode != 200 {
		t.Fatalf("/metrics status %d", r.StatusCode)
	}
	if m.Replication == nil || m.Replication.LagEpochs != 3 || m.Replication.LagBytes != 75 {
		t.Fatalf("replication metrics = %+v", m.Replication)
	}
}

func TestMetricsOnImmutableAndDirected(t *testing.T) {
	s := testServer(t)
	do(t, s, "GET", "/spg?u=0&v=3", "", nil)
	var m MetricsResponse
	if r := do(t, s, "GET", "/metrics", "", &m); r.StatusCode != 200 {
		t.Fatalf("immutable /metrics status %d", r.StatusCode)
	}
	if m.Endpoints["/spg"].Requests != 1 {
		t.Fatalf("immutable /spg counters = %+v", m.Endpoints["/spg"])
	}
	if m.Epoch != nil {
		t.Fatal("immutable server reported an epoch")
	}

	ds := testDirectedServer(t)
	get(t, ds, "/distance?u=0&v=3", nil)
	var dm MetricsResponse
	if r := get(t, ds, "/metrics", &dm); r.StatusCode != 200 {
		t.Fatalf("directed /metrics status %d", r.StatusCode)
	}
	if dm.Endpoints["/distance"].Requests != 1 {
		t.Fatalf("directed /distance counters = %+v", dm.Endpoints["/distance"])
	}
}

func TestMinEpochGate(t *testing.T) {
	s, di := testMutableServer(t)

	// Advance to epoch 2.
	do(t, s, "POST", "/edges", `{"u":1,"v":2}`, nil)
	do(t, s, "DELETE", "/edges?u=1&v=2", "", nil)
	if di.Epoch() != 2 {
		t.Fatalf("setup epoch = %d", di.Epoch())
	}

	for _, path := range []string{"/spg", "/distance", "/sketch", "/paths"} {
		// Satisfied and trivially-zero min_epoch answer normally.
		for _, q := range []string{"min_epoch=0", "min_epoch=2"} {
			if r := do(t, s, "GET", path+"?u=0&v=3&"+q, "", nil); r.StatusCode != 200 {
				t.Fatalf("%s with %s: status %d", path, q, r.StatusCode)
			}
		}
		// A future epoch gets 503 + Retry-After.
		resp := do(t, s, "GET", path+"?u=0&v=3&min_epoch=3", "", nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s future min_epoch: status %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s: 503 without Retry-After", path)
		}
		// Junk is a 400, not a silent pass.
		if r := do(t, s, "GET", path+"?u=0&v=3&min_epoch=banana", "", nil); r.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s junk min_epoch: status %d, want 400", path, r.StatusCode)
		}
	}

	// Immutable servers ignore min_epoch entirely.
	im := testServer(t)
	if r := do(t, im, "GET", "/spg?u=0&v=3&min_epoch=999", "", nil); r.StatusCode != 200 {
		t.Fatalf("immutable min_epoch: status %d", r.StatusCode)
	}
}
