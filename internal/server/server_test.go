package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"qbs"
	"qbs/internal/graph"
)

// testServer builds a server over the diamond-with-detour fixture:
// 0-1-3, 0-2-3 (two shortest 0–3 paths) and 0-4-5-3 (a longer detour),
// plus isolated vertex 6.
func testServer(t *testing.T) *Server {
	t.Helper()
	g := graph.MustFromEdges(7, []graph.Edge{
		{U: 0, W: 1}, {U: 1, W: 3}, {U: 0, W: 2}, {U: 2, W: 3},
		{U: 0, W: 4}, {U: 4, W: 5}, {U: 5, W: 3},
	})
	ix, err := qbs.BuildIndex(g, qbs.Options{NumLandmarks: 2})
	if err != nil {
		t.Fatal(err)
	}
	return New(ix)
}

func get(t *testing.T, s *Server, path string, out any) *http.Response {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	resp := rec.Result()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp
}

func TestSPGEndpoint(t *testing.T) {
	s := testServer(t)
	var resp SPGResponse
	if r := get(t, s, "/spg?u=0&v=3", &resp); r.StatusCode != 200 {
		t.Fatalf("status %d", r.StatusCode)
	}
	if resp.Distance == nil || *resp.Distance != 2 {
		t.Fatalf("distance = %v", resp.Distance)
	}
	if len(resp.Edges) != 4 {
		t.Fatalf("edges = %v", resp.Edges)
	}
	if resp.NumPaths != 2 {
		t.Fatalf("num paths = %d", resp.NumPaths)
	}
	if resp.Coverage == "" {
		t.Fatal("coverage missing")
	}
}

func TestSPGDisconnected(t *testing.T) {
	s := testServer(t)
	var resp SPGResponse
	get(t, s, "/spg?u=0&v=6", &resp)
	if !resp.Disconnected || resp.Distance != nil || len(resp.Edges) != 0 {
		t.Fatalf("disconnected response: %+v", resp)
	}
}

func TestSPGBadParams(t *testing.T) {
	s := testServer(t)
	for _, path := range []string{"/spg", "/spg?u=0", "/spg?u=0&v=99", "/spg?u=x&v=1", "/spg?u=-1&v=1"} {
		if r := get(t, s, path, nil); r.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", path, r.StatusCode)
		}
	}
}

func TestDistanceEndpoint(t *testing.T) {
	s := testServer(t)
	var resp DistanceResponse
	get(t, s, "/distance?u=4&v=3", &resp)
	if resp.Distance == nil || *resp.Distance != 2 {
		t.Fatalf("distance = %v", resp.Distance)
	}
	get(t, s, "/distance?u=6&v=0", &resp)
	if !resp.Disconnected {
		t.Fatal("expected disconnected")
	}
}

func TestSketchEndpoint(t *testing.T) {
	s := testServer(t)
	var resp SketchResponse
	get(t, s, "/sketch?u=1&v=2", &resp)
	if resp.DTop == nil {
		t.Fatal("d_top missing")
	}
	if len(resp.Landmarks) != 2 {
		t.Fatalf("landmarks = %v", resp.Landmarks)
	}
}

func TestPathsEndpoint(t *testing.T) {
	s := testServer(t)
	var resp PathsResponse
	get(t, s, "/paths?u=0&v=3", &resp)
	if resp.NumPaths != 2 || len(resp.Paths) != 2 || resp.Truncated {
		t.Fatalf("paths response: %+v", resp)
	}
	get(t, s, "/paths?u=0&v=3&limit=1", &resp)
	if len(resp.Paths) != 1 || !resp.Truncated {
		t.Fatalf("limit response: %+v", resp)
	}
	if r := get(t, s, "/paths?u=0&v=3&limit=0", nil); r.StatusCode != 400 {
		t.Fatal("limit=0 accepted")
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := testServer(t)
	var resp StatsResponse
	get(t, s, "/stats", &resp)
	if resp.Vertices != 7 || resp.NumLandmarks != 2 || resp.LabelEntries <= 0 {
		t.Fatalf("stats: %+v", resp)
	}
}

func TestHealthz(t *testing.T) {
	s := testServer(t)
	if r := get(t, s, "/healthz", nil); r.StatusCode != 200 {
		t.Fatalf("healthz status %d", r.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	req := httptest.NewRequest("POST", "/spg?u=0&v=3", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Result().StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", rec.Result().StatusCode)
	}
}

// ---------------------------------------------------------------------
// Mutable-mode tests.

// testMutableServer serves the same diamond fixture over a dynamic
// index.
func testMutableServer(t *testing.T) (*Server, *qbs.DynamicIndex) {
	t.Helper()
	g := graph.MustFromEdges(7, []graph.Edge{
		{U: 0, W: 1}, {U: 1, W: 3}, {U: 0, W: 2}, {U: 2, W: 3},
		{U: 0, W: 4}, {U: 4, W: 5}, {U: 5, W: 3},
	})
	di, err := qbs.BuildDynamicIndex(g, qbs.DynamicOptions{Index: qbs.Options{NumLandmarks: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return NewMutable(di), di
}

func do(t *testing.T, s *Server, method, path, body string, out any) *http.Response {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	resp := rec.Result()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s %s: %v", method, path, err)
		}
	}
	return resp
}

func TestWriteEndpoints(t *testing.T) {
	s, _ := testMutableServer(t)

	// Initial epoch.
	var ep EpochResponse
	if r := do(t, s, "GET", "/epoch", "", &ep); r.StatusCode != 200 {
		t.Fatalf("epoch status %d", r.StatusCode)
	}
	if ep.Epoch != 0 || ep.Edges != 7 {
		t.Fatalf("epoch = %+v", ep)
	}

	// Insert a shortcut 1-2: distance 1-2 drops from 2 to 1.
	var er EdgeResponse
	if r := do(t, s, "POST", "/edges", `{"u":1,"v":2}`, &er); r.StatusCode != 200 {
		t.Fatalf("post status %d", r.StatusCode)
	}
	if !er.Applied || er.Epoch != 1 || er.Edges != 8 {
		t.Fatalf("post response %+v", er)
	}
	var dr DistanceResponse
	do(t, s, "GET", "/distance?u=1&v=2", "", &dr)
	if dr.Distance == nil || *dr.Distance != 1 {
		t.Fatalf("distance after insert = %+v", dr)
	}

	// Idempotent re-insert: applied=false, epoch unchanged.
	if r := do(t, s, "POST", "/edges", `{"u":2,"v":1}`, &er); r.StatusCode != 200 {
		t.Fatalf("status %d", r.StatusCode)
	}
	if er.Applied || er.Epoch != 1 {
		t.Fatalf("re-insert response %+v", er)
	}

	// Delete both 0-3 two-hop paths: the detour 0-4-5-3 takes over.
	do(t, s, "DELETE", "/edges?u=1&v=3", "", &er)
	do(t, s, "DELETE", "/edges?u=2&v=3", "", &er)
	if !er.Applied || er.Edges != 6 {
		t.Fatalf("delete response %+v", er)
	}
	var spg SPGResponse
	do(t, s, "GET", "/spg?u=0&v=3", "", &spg)
	if spg.Distance == nil || *spg.Distance != 3 || spg.NumPaths != 1 {
		t.Fatalf("spg after deletes = %+v", spg)
	}

	// Deleting an absent edge is a no-op.
	do(t, s, "DELETE", "/edges?u=1&v=3", "", &er)
	if er.Applied {
		t.Fatal("deleting absent edge reported applied")
	}

	// Bad requests.
	if r := do(t, s, "POST", "/edges", `{"u":1,"v":1}`, nil); r.StatusCode != 400 {
		t.Fatalf("self-loop status %d", r.StatusCode)
	}
	if r := do(t, s, "POST", "/edges", `{"u":1,"v":99}`, nil); r.StatusCode != 400 {
		t.Fatalf("out-of-range status %d", r.StatusCode)
	}
	if r := do(t, s, "POST", "/edges", `not json`, nil); r.StatusCode != 400 {
		t.Fatalf("bad body status %d", r.StatusCode)
	}

	// Stats reports mutable mode and counters.
	var st StatsResponse
	do(t, s, "GET", "/stats", "", &st)
	if !st.Mutable || st.Dynamic == nil {
		t.Fatalf("stats = %+v", st)
	}
	if st.Dynamic.Inserts != 1 || st.Dynamic.Deletes != 2 {
		t.Fatalf("dynamic stats = %+v", st.Dynamic)
	}
}

func TestEdgesWrongMethod(t *testing.T) {
	s, _ := testMutableServer(t)
	for _, method := range []string{"PUT", "PATCH", "GET", "HEAD"} {
		req := httptest.NewRequest(method, "/edges", strings.NewReader(`{"u":1,"v":2}`))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		resp := rec.Result()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s /edges: status %d, want 405", method, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "POST, DELETE" {
			t.Fatalf("%s /edges: Allow = %q, want \"POST, DELETE\"", method, allow)
		}
	}
	// The allowed methods still work (the catch-all must not shadow them).
	var er EdgeResponse
	if r := do(t, s, "POST", "/edges", `{"u":1,"v":2}`, &er); r.StatusCode != 200 || !er.Applied {
		t.Fatalf("POST /edges broken by catch-all: status %d applied %v", r.StatusCode, er.Applied)
	}
	if r := do(t, s, "DELETE", "/edges?u=1&v=2", "", &er); r.StatusCode != 200 || !er.Applied {
		t.Fatalf("DELETE /edges broken by catch-all: status %d applied %v", r.StatusCode, er.Applied)
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	// Without a durable store: 409.
	s, _ := testMutableServer(t)
	if r := do(t, s, "POST", "/checkpoint", "", nil); r.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint without store: status %d, want 409", r.StatusCode)
	}

	// With one: persists and reports the epoch; the store can be reopened.
	dir := t.TempDir()
	g := graph.MustFromEdges(7, []graph.Edge{
		{U: 0, W: 1}, {U: 1, W: 3}, {U: 0, W: 2}, {U: 2, W: 3},
		{U: 0, W: 4}, {U: 4, W: 5}, {U: 5, W: 3},
	})
	di, err := qbs.CreateStore(dir, g, qbs.StoreOptions{Index: qbs.Options{NumLandmarks: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ds := NewMutable(di)
	var er EdgeResponse
	do(t, ds, "POST", "/edges", `{"u":1,"v":2}`, &er)
	var cp CheckpointResponse
	if r := do(t, ds, "POST", "/checkpoint", "", &cp); r.StatusCode != 200 {
		t.Fatalf("checkpoint status %d", r.StatusCode)
	}
	if cp.Epoch != 1 {
		t.Fatalf("checkpoint epoch %d, want 1", cp.Epoch)
	}
	if err := di.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := qbs.OpenStore(dir, qbs.StoreOptions{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Epoch() != 1 || !re.HasEdge(1, 2) {
		t.Fatalf("reopened store: epoch %d hasEdge %v", re.Epoch(), re.HasEdge(1, 2))
	}
}

func TestDynamicReadOnlyServer(t *testing.T) {
	_, di := testMutableServer(t)
	if _, err := di.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	s := NewDynamicReadOnly(di)
	var dr DistanceResponse
	if r := do(t, s, "GET", "/distance?u=0&v=3", "", &dr); r.StatusCode != 200 || dr.Distance == nil {
		t.Fatalf("read-only dynamic server query failed: %+v", dr)
	}
	// Observability stays on: the operator can confirm the recovered
	// epoch even though writes are withheld.
	var ep EpochResponse
	if r := do(t, s, "GET", "/epoch", "", &ep); r.StatusCode != 200 || ep.Epoch != 1 {
		t.Fatalf("read-only /epoch: status %d resp %+v", r.StatusCode, ep)
	}
	var st StatsResponse
	if r := do(t, s, "GET", "/stats", "", &st); r.StatusCode != 200 || st.Dynamic == nil || st.Mutable {
		t.Fatalf("read-only /stats: status %d mutable=%v dynamic=%v", r.StatusCode, st.Mutable, st.Dynamic)
	}
	if r := do(t, s, "POST", "/edges", `{"u":1,"v":2}`, nil); r.StatusCode == 200 {
		t.Fatal("read-only dynamic server accepted a write")
	}
	if r := do(t, s, "POST", "/checkpoint", "", nil); r.StatusCode == 200 {
		t.Fatal("read-only dynamic server accepted a checkpoint")
	}
}

func TestWriteEndpointsAbsentOnImmutable(t *testing.T) {
	s := testServer(t)
	if r := do(t, s, "POST", "/edges", `{"u":1,"v":2}`, nil); r.StatusCode == 200 {
		t.Fatal("immutable server accepted a write")
	}
	if r := do(t, s, "GET", "/epoch", "", nil); r.StatusCode == 200 {
		t.Fatal("immutable server served /epoch")
	}
}
