package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"qbs/internal/obs"
)

// Trace inspection endpoints, registered on every server mode:
//
//	GET /debug/traces            recent retained traces, newest first
//	    ?n=<1..1024>             cap the listing (default all)
//	    ?min_ms=<float>          only traces at least this slow
//	    ?error=1                 only errored traces
//	GET /debug/traces/{id}       one trace's full span tree
//
// The store holds what tail sampling retained: slow requests (over the
// slowlog threshold), errors, explicitly sampled traces (traceparent
// flag 01), and the head-sampled fraction.

// TracesResponse is the JSON body of GET /debug/traces.
type TracesResponse struct {
	Count  int                `json:"count"`
	Traces []obs.TraceSummary `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if raw := q.Get("n"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > 1024 {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("parameter \"n\" must be an integer in [1,1024], got %q", raw),
			})
			return
		}
		limit = n
	}
	var minDur time.Duration
	if raw := q.Get("min_ms"); raw != "" {
		ms, err := strconv.ParseFloat(raw, 64)
		if err != nil || ms < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("parameter \"min_ms\" must be a non-negative number, got %q", raw),
			})
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	errOnly := q.Get("error") == "1" || q.Get("error") == "true"
	stored := s.tracer.Store().Recent(limit, minDur, errOnly)
	resp := TracesResponse{Count: len(stored), Traces: make([]obs.TraceSummary, len(stored))}
	for i, st := range stored {
		resp.Traces[i] = st.Summary()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st := s.tracer.Store().Get(id)
	if st == nil {
		writeJSON(w, http.StatusNotFound, errorBody{
			Error: fmt.Sprintf("trace %q not found (evicted from the ring, or never retained by tail sampling)", id),
		})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// traceSpans returns the request's span buffer, or nil off traced
// paths. Every TraceBuf method is nil-safe, so callers just record.
func traceSpans(r *http.Request) *obs.TraceBuf {
	if tr := obs.FromContext(r.Context()); tr != nil {
		return tr.Spans
	}
	return nil
}
