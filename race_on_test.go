//go:build race

package qbs_test

// raceEnabled reports whether the race detector is active; allocation
// assertions that depend on uninstrumented sync.Pool behaviour are
// skipped under it.
const raceEnabled = true
